#include "graph/algorithm_graph.hpp"

#include <gtest/gtest.h>

namespace ftsched {
namespace {

AlgorithmGraph diamond() {
  AlgorithmGraph graph;
  const OperationId in = graph.add_operation("in", OperationKind::kExtioIn);
  const OperationId left = graph.add_operation("left");
  const OperationId right = graph.add_operation("right");
  const OperationId out = graph.add_operation("out", OperationKind::kExtioOut);
  graph.add_dependency(in, left);
  graph.add_dependency(in, right);
  graph.add_dependency(left, out);
  graph.add_dependency(right, out);
  return graph;
}

TEST(AlgorithmGraph, Construction) {
  const AlgorithmGraph graph = diamond();
  EXPECT_EQ(graph.operation_count(), 4u);
  EXPECT_EQ(graph.dependency_count(), 4u);
  EXPECT_TRUE(graph.find_operation("left").valid());
  EXPECT_FALSE(graph.find_operation("nope").valid());
  EXPECT_EQ(graph.operation(graph.find_operation("in")).kind,
            OperationKind::kExtioIn);
}

TEST(AlgorithmGraph, DependencyNamesDefaultToEndpoints) {
  const AlgorithmGraph graph = diamond();
  EXPECT_EQ(graph.dependency(DependencyId{0}).name, "in->left");
}

TEST(AlgorithmGraph, RejectsDuplicatesAndSelfLoops) {
  AlgorithmGraph graph;
  const OperationId a = graph.add_operation("a");
  EXPECT_THROW(graph.add_operation("a"), std::invalid_argument);
  EXPECT_THROW(graph.add_operation(""), std::invalid_argument);
  EXPECT_THROW(graph.add_dependency(a, a), std::invalid_argument);
  EXPECT_THROW(graph.add_dependency(a, OperationId{7}),
               std::invalid_argument);
}

TEST(AlgorithmGraph, NeighbourQueries) {
  const AlgorithmGraph graph = diamond();
  const OperationId in = graph.find_operation("in");
  const OperationId out = graph.find_operation("out");
  EXPECT_EQ(graph.successors(in).size(), 2u);
  EXPECT_EQ(graph.predecessors(out).size(), 2u);
  EXPECT_TRUE(graph.predecessors(in).empty());
  EXPECT_TRUE(graph.successors(out).empty());
  EXPECT_EQ(graph.sources(), std::vector<OperationId>{in});
  EXPECT_EQ(graph.sinks(), std::vector<OperationId>{out});
}

TEST(AlgorithmGraph, TopologicalOrderIsDeterministicAndValid) {
  const AlgorithmGraph graph = diamond();
  const auto order = graph.topological_order();
  ASSERT_EQ(order.size(), 4u);
  // in before left/right before out; id tie-break puts left before right.
  EXPECT_EQ(order[0], graph.find_operation("in"));
  EXPECT_EQ(order[1], graph.find_operation("left"));
  EXPECT_EQ(order[2], graph.find_operation("right"));
  EXPECT_EQ(order[3], graph.find_operation("out"));
  EXPECT_TRUE(graph.is_acyclic());
}

TEST(AlgorithmGraph, MemBreaksCycles) {
  // law -> update -> state -> law is a data cycle, but the edge INTO the
  // mem carries no intra-iteration precedence, so the graph is schedulable.
  AlgorithmGraph graph;
  const OperationId state = graph.add_operation("state", OperationKind::kMem);
  const OperationId law = graph.add_operation("law");
  const OperationId update = graph.add_operation("update");
  graph.add_dependency(state, law);
  graph.add_dependency(law, update);
  graph.add_dependency(update, state);

  EXPECT_TRUE(graph.is_acyclic());
  EXPECT_TRUE(graph.check().empty());
  // The mem is a source: no precedence predecessors.
  EXPECT_TRUE(graph.predecessors(state).empty());
  EXPECT_TRUE(graph.precedence_in(state).empty());
  // But the raw data edge exists and is flagged non-precedence.
  ASSERT_EQ(graph.in_dependencies(state).size(), 1u);
  EXPECT_FALSE(graph.is_precedence(graph.in_dependencies(state).front()));
  // The mem's outgoing edge is a normal precedence.
  EXPECT_TRUE(graph.is_precedence(graph.out_dependencies(state).front()));
}

TEST(AlgorithmGraph, DetectsCycles) {
  AlgorithmGraph graph;
  const OperationId a = graph.add_operation("a");
  const OperationId b = graph.add_operation("b");
  graph.add_dependency(a, b);
  graph.add_dependency(b, a);
  EXPECT_FALSE(graph.is_acyclic());
  EXPECT_TRUE(graph.topological_order().empty());
  EXPECT_FALSE(graph.check().empty());
}

TEST(AlgorithmGraph, ChecksExtioConstraints) {
  AlgorithmGraph graph;
  const OperationId in = graph.add_operation("in", OperationKind::kExtioIn);
  const OperationId a = graph.add_operation("a");
  graph.add_dependency(a, in);  // extio input must not have a predecessor
  EXPECT_EQ(graph.check().size(), 1u);
}

TEST(AlgorithmGraph, ParallelEdgesAllowed) {
  AlgorithmGraph graph;
  const OperationId a = graph.add_operation("a");
  const OperationId b = graph.add_operation("b");
  graph.add_dependency(a, b, "first");
  graph.add_dependency(a, b, "second");
  EXPECT_EQ(graph.dependency_count(), 2u);
  EXPECT_EQ(graph.successors(a).size(), 1u);  // deduplicated
  EXPECT_EQ(graph.precedence_out(a).size(), 2u);
}

TEST(OperationKind, Names) {
  EXPECT_EQ(to_string(OperationKind::kComp), "comp");
  EXPECT_EQ(to_string(OperationKind::kMem), "mem");
  EXPECT_EQ(to_string(OperationKind::kExtioIn), "extio-in");
  EXPECT_EQ(to_string(OperationKind::kExtioOut), "extio-out");
  EXPECT_TRUE(is_extio(OperationKind::kExtioIn));
  EXPECT_FALSE(is_extio(OperationKind::kMem));
}

}  // namespace
}  // namespace ftsched
