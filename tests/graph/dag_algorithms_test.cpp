#include "graph/dag_algorithms.hpp"

#include <gtest/gtest.h>

#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(DagTiming, PaperAlgorithmCriticalPath) {
  // Minimum WCETs: I=1, A=2, B=1.5, C=1, D=1, E=1, O=1.5.
  // Critical path I-A-B-E-O = 1+2+1.5+1+1.5 = 7.
  const auto graph = workload::paper_algorithm();
  auto min_wcet = [&](OperationId op) -> Time {
    const std::string& name = graph->operation(op).name;
    if (name == "I") return 1;
    if (name == "A") return 2;
    if (name == "B") return 1.5;
    if (name == "E") return 1;
    if (name == "O") return 1.5;
    return 1;  // C, D
  };
  const DagTiming timing = compute_dag_timing(*graph, min_wcet);
  EXPECT_DOUBLE_EQ(timing.critical_path, 7.0);

  const auto tail = [&](const char* name) {
    return timing.tail[graph->find_operation(name).index()];
  };
  const auto head = [&](const char* name) {
    return timing.head[graph->find_operation(name).index()];
  };
  EXPECT_DOUBLE_EQ(tail("O"), 0.0);
  EXPECT_DOUBLE_EQ(tail("E"), 1.5);
  EXPECT_DOUBLE_EQ(tail("B"), 2.5);
  EXPECT_DOUBLE_EQ(tail("C"), 2.5);
  EXPECT_DOUBLE_EQ(tail("A"), 4.0);  // via B
  EXPECT_DOUBLE_EQ(tail("I"), 6.0);
  EXPECT_DOUBLE_EQ(head("I"), 0.0);
  EXPECT_DOUBLE_EQ(head("A"), 1.0);
  EXPECT_DOUBLE_EQ(head("E"), 4.5);  // I+A+B
  EXPECT_DOUBLE_EQ(head("O"), 5.5);
}

TEST(DagTiming, CommunicationCostsExtendPaths) {
  AlgorithmGraph graph;
  const OperationId a = graph.add_operation("a");
  const OperationId b = graph.add_operation("b");
  graph.add_dependency(a, b);
  const DagTiming timing = compute_dag_timing(
      graph, [](OperationId) -> Time { return 2; },
      [](DependencyId) -> Time { return 3; });
  EXPECT_DOUBLE_EQ(timing.critical_path, 7.0);  // 2 + 3 + 2
  EXPECT_DOUBLE_EQ(timing.tail[a.index()], 5.0);
  EXPECT_DOUBLE_EQ(timing.head[b.index()], 5.0);
}

TEST(DagTiming, SingleOperation) {
  AlgorithmGraph graph;
  graph.add_operation("only");
  const DagTiming timing =
      compute_dag_timing(graph, [](OperationId) -> Time { return 4; });
  EXPECT_DOUBLE_EQ(timing.critical_path, 4.0);
}

TEST(DagTiming, EmptyGraph) {
  const AlgorithmGraph graph;
  const DagTiming timing =
      compute_dag_timing(graph, [](OperationId) -> Time { return 1; });
  EXPECT_DOUBLE_EQ(timing.critical_path, 0.0);
}

TEST(ReachableFrom, TransitiveClosure) {
  const auto graph = workload::paper_algorithm();
  const auto from_a = reachable_from(*graph, graph->find_operation("A"));
  EXPECT_EQ(from_a.size(), 5u);  // B C D E O
  const auto from_o = reachable_from(*graph, graph->find_operation("O"));
  EXPECT_TRUE(from_o.empty());
}

}  // namespace
}  // namespace ftsched
