#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(Dot, PaperAlgorithm) {
  const auto graph = workload::paper_algorithm();
  const std::string dot = to_dot(*graph, "figure7");
  EXPECT_NE(dot.find("digraph \"figure7\""), std::string::npos);
  EXPECT_NE(dot.find("\"I\" [shape=invhouse]"), std::string::npos);
  EXPECT_NE(dot.find("\"O\" [shape=house]"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" [shape=ellipse]"), std::string::npos);
  EXPECT_NE(dot.find("\"I\" -> \"A\""), std::string::npos);
  EXPECT_NE(dot.find("\"E\" -> \"O\""), std::string::npos);
}

TEST(Dot, MemEdgesDashes) {
  AlgorithmGraph graph;
  const OperationId state = graph.add_operation("state", OperationKind::kMem);
  const OperationId law = graph.add_operation("law");
  graph.add_dependency(law, state);
  const std::string dot = to_dot(graph);
  EXPECT_NE(dot.find("\"state\" [shape=box]"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed]"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
