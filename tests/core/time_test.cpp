#include "core/time.hpp"

#include <gtest/gtest.h>

namespace ftsched {
namespace {

TEST(Time, EpsilonComparisons) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + kTimeEpsilon / 2));
  EXPECT_TRUE(time_eq(1.0, 1.0 - kTimeEpsilon / 2));
  EXPECT_FALSE(time_eq(1.0, 1.0 + 2 * kTimeEpsilon));
  EXPECT_TRUE(time_lt(1.0, 1.1));
  EXPECT_FALSE(time_lt(1.0, 1.0 + kTimeEpsilon / 2));
  EXPECT_TRUE(time_le(1.0, 1.0));
  EXPECT_TRUE(time_ge(1.0, 1.0));
  EXPECT_TRUE(time_gt(1.1, 1.0));
}

TEST(Time, AccumulatedRoundingStaysEqual) {
  Time sum = 0;
  for (int i = 0; i < 10; ++i) sum += 0.1;
  EXPECT_TRUE(time_eq(sum, 1.0));
}

TEST(Time, InfinityHandling) {
  EXPECT_TRUE(is_infinite(kInfinite));
  EXPECT_FALSE(is_infinite(1e300));
  EXPECT_TRUE(time_eq(kInfinite, kInfinite));
  EXPECT_FALSE(time_eq(kInfinite, 1.0));
  EXPECT_TRUE(time_lt(5.0, kInfinite));
}

TEST(Interval, Overlap) {
  const Interval a{0, 2};
  const Interval b{2, 4};
  const Interval c{1, 3};
  EXPECT_FALSE(a.overlaps(b));  // half-open: touching is not overlapping
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
  EXPECT_DOUBLE_EQ(a.length(), 2.0);
}

TEST(Interval, Contains) {
  const Interval a{1, 2};
  EXPECT_TRUE(a.contains(1.0));
  EXPECT_TRUE(a.contains(1.5));
  EXPECT_FALSE(a.contains(2.0));  // half-open
  EXPECT_FALSE(a.contains(0.5));
}

TEST(TimeToString, Formats) {
  EXPECT_EQ(time_to_string(3.0), "3");
  EXPECT_EQ(time_to_string(4.5), "4.5");
  EXPECT_EQ(time_to_string(1.25), "1.25");
  EXPECT_EQ(time_to_string(0.0), "0");
  EXPECT_EQ(time_to_string(kInfinite), "inf");
  EXPECT_EQ(time_to_string(-2.0), "-2");
  EXPECT_EQ(time_to_string(9.4), "9.4");
}

}  // namespace
}  // namespace ftsched
