// LazyMt64's determinism contract: for every seed and every draw count the
// output stream is bit-identical to std::mt19937_64. The campaign's whole
// seeded-corpus stability rests on this — swapping the lazy engine in (or
// out) must never change a generated scenario. The sweep deliberately
// crosses both internal boundaries: draw 156 (leaving the lazy half-window
// finishes the first twist) and draw 312 (the first full-block re-twist).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "core/mt64.hpp"

namespace ftsched {
namespace {

TEST(LazyMt64, MatchesStdAcrossLazyBoundary) {
  for (const std::uint64_t seed :
       {0ull, 1ull, 42ull, 5489ull, 0x9E3779B97F4A7C15ull, ~0ull}) {
    std::mt19937_64 reference(seed);
    LazyMt64 lazy(seed);
    for (int draw = 0; draw < 700; ++draw) {
      ASSERT_EQ(lazy(), reference())
          << "seed " << seed << " diverges at draw " << draw;
    }
  }
}

TEST(LazyMt64, EveryPrefixLengthMatches) {
  // A fresh engine per draw count: the lazy seeding must be correct no
  // matter where the caller stops, not only for long streams.
  for (const int draws : {1, 2, 10, 155, 156, 157, 311, 312, 313, 400}) {
    std::mt19937_64 reference(1234567);
    LazyMt64 lazy(1234567);
    std::uint64_t want = 0;
    std::uint64_t got = 0;
    for (int i = 0; i < draws; ++i) {
      want = reference();
      got = lazy();
    }
    EXPECT_EQ(got, want) << "last of " << draws << " draws";
  }
}

TEST(LazyMt64, ReseedRestartsTheStream) {
  LazyMt64 lazy(9);
  for (int i = 0; i < 200; ++i) (void)lazy();  // past the lazy window
  lazy.reseed(77);
  std::mt19937_64 reference(77);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(lazy(), reference()) << "post-reseed draw " << i;
  }
  // Reseeding with the same seed reproduces the same stream exactly.
  lazy.reseed(77);
  LazyMt64 fresh(77);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(lazy(), fresh());
}

TEST(LazyMt64, SatisfiesUniformRandomBitGenerator) {
  static_assert(LazyMt64::min() == 0);
  static_assert(LazyMt64::max() == ~std::uint64_t{0});
  // Usable with std distributions (same results as the std engine).
  std::mt19937_64 reference(3);
  LazyMt64 lazy(3);
  std::uniform_int_distribution<int> ref_dist(0, 999);
  std::uniform_int_distribution<int> lazy_dist(0, 999);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lazy_dist(lazy), ref_dist(reference));
  }
}

}  // namespace
}  // namespace ftsched
