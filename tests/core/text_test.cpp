#include "core/text.hpp"

#include <gtest/gtest.h>

namespace ftsched {
namespace {

TEST(Text, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Text, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(Text, RenderTable) {
  const std::string table = render_table({
      {"name", "value"},
      {"x", "1"},
      {"longer", "2.5"},
  });
  EXPECT_NE(table.find("name"), std::string::npos);
  EXPECT_NE(table.find("longer"), std::string::npos);
  // Header separated from body by a rule.
  EXPECT_NE(table.find("----"), std::string::npos);
  // Columns aligned: every data row starts at column 0 with the key.
  EXPECT_EQ(table.find("x "), table.find('x'));
}

TEST(Text, RenderTableEmpty) { EXPECT_EQ(render_table({}), ""); }

}  // namespace
}  // namespace ftsched
