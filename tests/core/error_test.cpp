#include "core/error.hpp"

#include <gtest/gtest.h>

namespace ftsched {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> result{42};
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_THROW((void)result.error(), std::logic_error);
}

TEST(Expected, HoldsError) {
  Expected<int> result{
      Error{Error::Code::kInsufficientRedundancy, "only one processor"}};
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, Error::Code::kInsufficientRedundancy);
  EXPECT_EQ(result.error().message, "only one processor");
  EXPECT_THROW((void)result.value(), std::logic_error);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> result{std::string("payload")};
  const std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ErrorCode, Names) {
  EXPECT_EQ(to_string(Error::Code::kInsufficientRedundancy),
            "insufficient-redundancy");
  EXPECT_EQ(to_string(Error::Code::kInvalidInput), "invalid-input");
  EXPECT_EQ(to_string(Error::Code::kDeadlineMissed), "deadline-missed");
  EXPECT_EQ(to_string(Error::Code::kNoRoute), "no-route");
}

TEST(Require, ThrowsOnViolation) {
  EXPECT_THROW(FTSCHED_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(FTSCHED_REQUIRE(true, "fine"));
}

}  // namespace
}  // namespace ftsched
