#include "core/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ftsched {
namespace {

TEST(Ids, DefaultIsInvalid) {
  const OperationId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(to_string(id), "<invalid>");
}

TEST(Ids, ValueRoundTrip) {
  const ProcessorId id{3};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3);
  EXPECT_EQ(id.index(), 3u);
  EXPECT_EQ(to_string(id), "3");
}

TEST(Ids, Ordering) {
  EXPECT_LT(OperationId{1}, OperationId{2});
  EXPECT_EQ(OperationId{5}, OperationId{5});
  EXPECT_NE(OperationId{5}, OperationId{6});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<OperationId, ProcessorId>);
  static_assert(!std::is_convertible_v<OperationId, ProcessorId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<LinkId> set;
  set.insert(LinkId{1});
  set.insert(LinkId{1});
  set.insert(LinkId{2});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace ftsched
