// The campaign oracle's accounting corners: fail-silent windows widen the
// response envelope by their measured deferral — closing edge minus first
// actually-blocked send, never more than the window length and never its
// absolute end (the bug this file pins) — malformed silence placements
// flag the plan instead of being silently dropped, and link faults are
// budgeted separately from the paper's §5.1 processor contract.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "campaign/oracle.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

using workload::OwnedProblem;

TEST(Oracle, LateShortSilenceCannotMaskAResponseViolation) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();
  const Simulator simulator(sched);
  const Time nominal = simulator.run().response_time;
  ASSERT_FALSE(is_infinite(nominal));

  // A short window placed late: the buggy accounting granted the window's
  // absolute end (~nominal) on top of the bound, masking every violation
  // this mission could produce; a send blocked at `from` resumes at `to`,
  // so the window is worth at most its length, 0.25.
  MissionPlan plan;
  plan.iterations = 1;
  plan.silences.push_back(MissionSilence{
      0, SilentWindow{ProcessorId{0}, nominal - 0.25, nominal}});

  const MissionResult result = run_mission(simulator, plan);
  ASSERT_EQ(result.iterations.size(), 1u);
  ASSERT_TRUE(result.iterations[0].all_outputs_produced);
  const Time response = result.iterations[0].response_time;
  ASSERT_TRUE(time_ge(response, nominal));

  OracleSpec tight;
  tight.response_bound = nominal - 0.5;
  const Verdict verdict =
      Oracle(sched, tight).judge(plan, result);
  EXPECT_TRUE(verdict.within_contract);
  EXPECT_TRUE(verdict.response_exceeded);
  EXPECT_FALSE(verdict.ok());

  // The allowance is the window's measured deferral — closing edge minus
  // the first send it actually blocked — which can never exceed the
  // window's length.
  const Time deferral = result.iterations[0].silence_deferral;
  ASSERT_TRUE(time_ge(deferral, 0));
  ASSERT_TRUE(time_le(deferral, 0.25));

  // A bound that leaves exactly the measured deferral of headroom is
  // satisfied...
  OracleSpec exact;
  exact.response_bound = response - deferral;
  EXPECT_TRUE(Oracle(sched, exact).judge(plan, result).ok());
  // ...and noticeably less headroom than that is not.
  OracleSpec short_by_a_hair;
  short_by_a_hair.response_bound = response - deferral - 0.05;
  EXPECT_FALSE(Oracle(sched, short_by_a_hair).judge(plan, result).ok());
}

TEST(Oracle, SilenceTargetingAMissingIterationFlagsThePlan) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();
  const Oracle oracle(sched);

  for (const int bad_iteration : {-1, 2, 7}) {
    MissionPlan plan;
    plan.iterations = 2;
    plan.silences.push_back(MissionSilence{
        bad_iteration, SilentWindow{ProcessorId{0}, 1.0, 2.0}});
    const MissionResult result = run_mission(sched, plan);
    const Verdict verdict = oracle.judge(plan, result);
    EXPECT_FALSE(verdict.ok()) << "iteration " << bad_iteration;
    EXPECT_EQ(verdict.first_violation_iteration, 0);
    ASSERT_FALSE(verdict.violations.empty());
    EXPECT_NE(verdict.violations[0].find("silence"), std::string::npos)
        << verdict.violations[0];
  }

  // The in-range placement stays judged on its merits.
  MissionPlan fine;
  fine.iterations = 2;
  fine.silences.push_back(
      MissionSilence{1, SilentWindow{ProcessorId{0}, 1.0, 2.0}});
  EXPECT_TRUE(oracle.judge(fine, run_mission(sched, fine)).ok());
}

// The three OracleSpec shapes the certifier entry points build: --certify
// (processor claim only), --certify-links (adds a link budget), and
// --certify-silences / --response-bound (response envelope enforced).
std::vector<OracleSpec> certifier_entry_point_specs() {
  OracleSpec plain;
  plain.claimed_tolerance = 1;
  plain.check_response = false;
  OracleSpec links = plain;
  links.claimed_link_tolerance = 1;
  OracleSpec silences = plain;
  silences.response_bound = 100.0;
  silences.check_response = true;
  return {plain, links, silences};
}

TEST(Oracle, OutOfRangeSilenceIterationFlagsEveryEntryPoint) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();

  for (const OracleSpec& spec : certifier_entry_point_specs()) {
    const Oracle oracle(sched, spec);
    for (const int bad_iteration : {-3, 3, 42}) {
      MissionPlan plan;
      plan.iterations = 3;
      plan.silences.push_back(MissionSilence{
          bad_iteration, SilentWindow{ProcessorId{0}, 0.5, 1.5}});
      // run_mission never injects an out-of-range silence — exactly the
      // harness drop the oracle must refuse to paper over.
      const Verdict verdict = oracle.judge(plan, run_mission(sched, plan));
      EXPECT_FALSE(verdict.ok()) << "iteration " << bad_iteration;
      EXPECT_EQ(verdict.first_violation_iteration, 0);
      ASSERT_FALSE(verdict.violations.empty());
      EXPECT_NE(verdict.violations[0].find("harness"), std::string::npos)
          << verdict.violations[0];
      EXPECT_NE(verdict.violations[0].find("targets iteration"),
                std::string::npos)
          << verdict.violations[0];
    }
  }
}

TEST(Oracle, ZeroLengthSilenceWindowFlagsEveryEntryPoint) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();

  // An in-range zero-length window never reaches the simulator (inject
  // rejects it), so a mission "result" for such a plan can only come from
  // a harness that dropped the event. Reproduce that drop — simulate the
  // plan WITHOUT the malformed silence — and require the oracle to flag
  // the plan rather than trust the otherwise-clean result.
  for (const OracleSpec& spec : certifier_entry_point_specs()) {
    const Oracle oracle(sched, spec);
    for (const Time instant : {0.0, 1.0, 2.5}) {
      MissionPlan plan;
      plan.iterations = 2;
      plan.silences.push_back(MissionSilence{
          1, SilentWindow{ProcessorId{1}, instant, instant}});
      MissionPlan dropped = plan;
      dropped.silences.clear();
      const Verdict verdict =
          oracle.judge(plan, run_mission(sched, dropped));
      EXPECT_FALSE(verdict.ok()) << "window at " << instant;
      EXPECT_EQ(verdict.first_violation_iteration, 0);
      ASSERT_FALSE(verdict.violations.empty());
      EXPECT_NE(verdict.violations[0].find("harness"), std::string::npos)
          << verdict.violations[0];
      EXPECT_NE(verdict.violations[0].find("no positive length"),
                std::string::npos)
          << verdict.violations[0];
    }

    // Inverted windows (from > to) are equally length-free.
    MissionPlan inverted;
    inverted.iterations = 2;
    inverted.silences.push_back(
        MissionSilence{0, SilentWindow{ProcessorId{0}, 2.0, 1.0}});
    MissionPlan dropped = inverted;
    dropped.silences.clear();
    const Verdict verdict =
        oracle.judge(inverted, run_mission(sched, dropped));
    EXPECT_FALSE(verdict.ok());
    ASSERT_FALSE(verdict.violations.empty());
    EXPECT_NE(verdict.violations[0].find("no positive length"),
              std::string::npos)
        << verdict.violations[0];
  }
}

TEST(Oracle, LinkFaultsAreBudgetedSeparatelyFromTheProcessorContract) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();
  ASSERT_GT(ex.problem.architecture->link_count(), 0u);

  MissionPlan plan;
  plan.iterations = 1;
  plan.dead_links_at_start.push_back(LinkId{0});
  const MissionResult result = run_mission(sched, plan);

  // Default link budget 0: any link fault voids the contract, so losing
  // outputs there is the expected observation, not a violation.
  OracleSpec blind;
  blind.check_response = false;
  const Verdict outside = Oracle(sched, blind).judge(plan, result);
  EXPECT_FALSE(outside.within_contract);
  EXPECT_TRUE(outside.ok());

  // With a claimed link tolerance the same mission is within contract and
  // must mask the fault — lost outputs become violations.
  OracleSpec tolerant;
  tolerant.check_response = false;
  tolerant.claimed_link_tolerance = 1;
  const Oracle oracle(sched, tolerant);
  EXPECT_EQ(oracle.claimed_link_tolerance(), 1);
  const Verdict inside = oracle.judge(plan, result);
  EXPECT_TRUE(inside.within_contract);
  EXPECT_EQ(inside.ok(), result.every_iteration_served());
}

TEST(Oracle, ChainVerdictNamesOnlyTheViolatedConstraints) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();

  MissionPlan plan;
  plan.iterations = 1;
  const MissionResult result = run_mission(sched, plan);
  ASSERT_TRUE(result.every_iteration_served());

  // One generous chain and one impossibly tight one, judged together: the
  // verdict must name exactly the tight chain, keep the scalar flags
  // untouched, and the violation text must carry the chain's label.
  OracleSpec spec;
  spec.check_response = false;
  spec.latency_constraints.push_back(
      LatencyConstraint{"roomy", "A", "E", 100.0});
  spec.latency_constraints.push_back(
      LatencyConstraint{"tight", "A", "E", 0.01});
  const Oracle oracle(sched, spec);
  ASSERT_EQ(oracle.latency_constraints().size(), 2u);

  const Verdict verdict = oracle.judge(plan, result);
  EXPECT_TRUE(verdict.within_contract);
  EXPECT_TRUE(verdict.latency_exceeded);
  EXPECT_FALSE(verdict.response_exceeded);
  EXPECT_FALSE(verdict.outputs_lost);
  ASSERT_EQ(verdict.violated_constraints.size(), 1u);
  EXPECT_EQ(verdict.violated_constraints[0], "tight");
  ASSERT_FALSE(verdict.violations.empty());
  EXPECT_NE(verdict.violations[0].find("\"tight\""), std::string::npos)
      << verdict.violations[0];

  // Both chains generous: the same mission is clean and the verdict names
  // nothing — the multi-constraint oracle must not invent violations.
  OracleSpec roomy;
  roomy.check_response = false;
  roomy.latency_constraints.push_back(
      LatencyConstraint{"spine", "A", "E", 100.0});
  roomy.latency_constraints.push_back(
      LatencyConstraint{"mission", "I", "O", 100.0});
  const Verdict clean = Oracle(sched, roomy).judge(plan, result);
  EXPECT_TRUE(clean.ok());
  EXPECT_FALSE(clean.latency_exceeded);
  EXPECT_TRUE(clean.violated_constraints.empty());
}

TEST(Oracle, MalformedChainSpecsThrowAtConstruction) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sched = schedule_solution1(ex.problem).value();

  const auto expect_throws = [&](const LatencyConstraint& c,
                                 const char* needle) {
    OracleSpec spec;
    spec.latency_constraints.push_back(c);
    try {
      const Oracle oracle(sched, spec);
      FAIL() << "constraint \"" << c.name << "\" should have thrown";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };

  expect_throws(LatencyConstraint{"", "A", "E", 5.0}, "empty name");
  expect_throws(LatencyConstraint{"c", "Zeta", "E", 5.0},
                "\"Zeta\" is not in the graph");
  expect_throws(LatencyConstraint{"c", "A", "Zeta", 5.0},
                "\"Zeta\" is not in the graph");
  expect_throws(LatencyConstraint{"c", "A", "E", 0.0},
                "strictly positive bound");
  expect_throws(LatencyConstraint{"c", "A", "E", -3.0},
                "strictly positive bound");
  expect_throws(LatencyConstraint{"c", "A", "E", kInfinite},
                "strictly positive bound");

  // Duplicate names need two constraints in one spec.
  OracleSpec dup;
  dup.latency_constraints.push_back(LatencyConstraint{"c", "A", "E", 5.0});
  dup.latency_constraints.push_back(LatencyConstraint{"c", "I", "O", 9.0});
  EXPECT_THROW(Oracle(sched, dup), std::invalid_argument);

  // An endpoint present in the graph but never scheduled: a bare schedule
  // with no placements at all makes every operation replica-less.
  const Schedule empty(ex.problem, HeuristicKind::kBase);
  OracleSpec unplaced;
  unplaced.latency_constraints.push_back(
      LatencyConstraint{"c", "A", "E", 5.0});
  try {
    const Oracle oracle(empty, unplaced);
    FAIL() << "replica-less endpoint should have thrown";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no scheduled replica"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace ftsched::campaign
