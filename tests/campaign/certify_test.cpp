// Exhaustive K-failure certification: the fault-tolerant paper schedules
// must certify clean, the non-FT baseline must be refuted with concrete
// counterexamples, the report must be bit-identical for any thread count,
// and the exact-equivalence dedup must never change a verdict relative to
// the naive enumerator it prunes.
#include <gtest/gtest.h>

#include "campaign/certify.hpp"
#include "campaign/oracle.hpp"
#include "campaign/shrink.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched::campaign {
namespace {

using workload::OwnedProblem;

void expect_same_report(const CertifyReport& a, const CertifyReport& b) {
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.max_failures, b.max_failures);
  EXPECT_EQ(a.subsets, b.subsets);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.forks, b.forks);
  EXPECT_EQ(a.instants_kept, b.instants_kept);
  EXPECT_EQ(a.instants_merged, b.instants_merged);
  EXPECT_EQ(a.total_counterexamples, b.total_counterexamples);
  EXPECT_EQ(a.worst_response, b.worst_response);  // exact
  EXPECT_TRUE(a.metrics == b.metrics);
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
    EXPECT_EQ(a.counterexamples[i].dead_at_start,
              b.counterexamples[i].dead_at_start);
    EXPECT_EQ(a.counterexamples[i].crashes, b.counterexamples[i].crashes);
    EXPECT_EQ(a.counterexamples[i].outputs_lost,
              b.counterexamples[i].outputs_lost);
  }
}

TEST(Certify, PaperExample1Solution1CertifiesItsClaim) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CertifyReport report = certify(schedule);
  EXPECT_TRUE(report.certified);
  EXPECT_EQ(report.max_failures, 1);
  EXPECT_EQ(report.subsets, 4u);  // {}, {P1}, {P2}, {P3}
  EXPECT_GT(report.branches, 3u);
  EXPECT_TRUE(report.counterexamples.empty());
  EXPECT_EQ(report.total_counterexamples, 0u);
  EXPECT_FALSE(is_infinite(report.worst_response));
  // The certified worst response bounds the single-crash transient sweep.
  EXPECT_TRUE(time_ge(report.worst_response, schedule.makespan()));
}

TEST(Certify, PaperExample2Solution2CertifiesItsClaim) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const CertifyReport report = certify(schedule);
  EXPECT_TRUE(report.certified) << report.to_text(*ex.problem.architecture);
}

TEST(Certify, BaseScheduleClaimingK1IsRefuted) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  CertifySpec spec;
  spec.max_failures = 1;
  const CertifyReport report = certify(schedule, spec);
  EXPECT_FALSE(report.certified);
  EXPECT_GT(report.total_counterexamples, 0u);
  ASSERT_FALSE(report.counterexamples.empty());

  // Every recorded counterexample really does violate the oracle, and the
  // first one survives the shrinker (the certify -> shrink route the tool
  // exposes).
  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const Simulator simulator(schedule);
  for (const CertifyBranch& cex : report.counterexamples) {
    const MissionPlan plan = counterexample_plan(cex);
    const Verdict verdict = oracle.judge(plan, run_mission(schedule, plan));
    EXPECT_FALSE(verdict.ok());
    EXPECT_TRUE(verdict.outputs_lost);
  }
  const ShrinkResult shrunk =
      shrink(simulator, oracle, counterexample_plan(report.counterexamples[0]));
  EXPECT_LE(shrunk.final_events, shrunk.initial_events);
  EXPECT_FALSE(shrunk.violations.empty());
}

TEST(Certify, ReportIsThreadCountInvariant) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule good = schedule_solution1(ex.problem).value();
  const Schedule bad = schedule_base(ex.problem).value();
  for (const Schedule* schedule : {&good, &bad}) {
    CertifySpec spec;
    spec.max_failures = 1;
    spec.threads = 1;
    const CertifyReport one = certify(*schedule, spec);
    for (const unsigned threads : {2u, 4u}) {
      spec.threads = threads;
      const CertifyReport many = certify(*schedule, spec);
      expect_same_report(one, many);
      EXPECT_EQ(one.to_json(*ex.problem.architecture),
                many.to_json(*ex.problem.architecture));
    }
  }
}

TEST(Certify, DedupNeverChangesTheVerdict) {
  // Dedup is exact pruning: against the naive enumerator (dedup off) the
  // verdict, the worst response, and the per-victim counterexample set
  // must be unchanged — only the branch count may drop.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule good = schedule_solution1(ex.problem).value();
  const Schedule bad = schedule_base(ex.problem).value();
  for (const Schedule* schedule_ptr : {&good, &bad}) {
    const Schedule& schedule = *schedule_ptr;
    CertifySpec naive;
    naive.max_failures = 1;
    naive.dedup = false;
    CertifySpec pruned = naive;
    pruned.dedup = true;
    const CertifyReport full = certify(schedule, naive);
    const CertifyReport deduped = certify(schedule, pruned);
    EXPECT_EQ(full.certified, deduped.certified);
    EXPECT_EQ(full.worst_response, deduped.worst_response);
    EXPECT_EQ(full.total_counterexamples == 0,
              deduped.total_counterexamples == 0);
    EXPECT_LE(deduped.branches, full.branches);
    // At K=1 there is a single crash level, so the pruned and naive runs
    // see the same candidate sets: kept + merged must cover them exactly.
    EXPECT_EQ(deduped.instants_kept + deduped.instants_merged,
              full.instants_kept);
  }
}

TEST(Certify, RandomK2ProblemCertifiesToDepthTwo) {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.processors = 4;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  const OwnedProblem ex = workload::random_problem(params);
  const auto scheduled = schedule_solution2(ex.problem);
  ASSERT_TRUE(scheduled.has_value()) << scheduled.error().message;
  ASSERT_EQ(scheduled->failures_tolerated(), 2);

  const CertifyReport report = certify(scheduled.value());
  EXPECT_EQ(report.max_failures, 2);
  EXPECT_EQ(report.subsets, 1u + 4u + 6u);  // C(4,0)+C(4,1)+C(4,2)
  EXPECT_TRUE(report.certified) << report.to_text(*ex.problem.architecture);

  // Depth-two exploration really happened: some branch carries two
  // mid-run crashes.
  bool depth_two = false;
  CertifySpec collect;
  collect.collect_branches = true;
  const CertifyReport branches = certify(scheduled.value(), collect);
  for (const CertifyBranch& branch : branches.branches_list) {
    depth_two |= branch.crashes.size() == 2;
  }
  EXPECT_TRUE(depth_two);
}

TEST(Certify, ResponseBoundRefutesWhenTooTight) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CertifyReport open = certify(schedule);
  ASSERT_TRUE(open.certified);

  CertifySpec generous;
  generous.response_bound = open.worst_response;
  EXPECT_TRUE(certify(schedule, generous).certified);

  CertifySpec tight;
  tight.response_bound = open.worst_response - 0.5;
  const CertifyReport refuted = certify(schedule, tight);
  EXPECT_FALSE(refuted.certified);
  ASSERT_FALSE(refuted.counterexamples.empty());
  EXPECT_FALSE(refuted.counterexamples[0].outputs_lost);
  EXPECT_TRUE(time_gt(refuted.counterexamples[0].response_time,
                      tight.response_bound));
}

TEST(Certify, CounterexamplePlanRoundTrips) {
  CertifyBranch branch;
  branch.dead_at_start = {ProcessorId{2}};
  branch.crashes = {FailureEvent{ProcessorId{0}, 3.5}};
  const MissionPlan plan = counterexample_plan(branch);
  EXPECT_EQ(plan.iterations, 1);
  EXPECT_EQ(plan.dead_at_start, branch.dead_at_start);
  ASSERT_EQ(plan.failures.size(), 1u);
  EXPECT_EQ(plan.failures[0].iteration, 0);
  EXPECT_TRUE(plan.failures[0].event == branch.crashes[0]);
}

}  // namespace
}  // namespace ftsched::campaign
