// Exhaustive budgeted-fault certification: the fault-tolerant paper
// schedules must certify their processor claim clean, the non-FT baseline
// and the link-fragile bus topology must be refuted with concrete
// counterexamples, fail-silent windows must widen the response envelope
// without breaking certification, the report must be bit-identical for
// any thread count, and the exact-equivalence dedup must never change a
// verdict relative to the naive enumerator it prunes — per fault class.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/certify.hpp"
#include "campaign/oracle.hpp"
#include "campaign/shrink.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched::campaign {
namespace {

using workload::OwnedProblem;

void expect_same_report(const CertifyReport& a, const CertifyReport& b) {
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.max_failures, b.max_failures);
  EXPECT_EQ(a.max_link_failures, b.max_link_failures);
  EXPECT_EQ(a.max_silences, b.max_silences);
  EXPECT_EQ(a.subsets, b.subsets);
  EXPECT_EQ(a.link_subsets, b.link_subsets);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.forks, b.forks);
  EXPECT_EQ(a.instants_kept, b.instants_kept);
  EXPECT_EQ(a.instants_merged, b.instants_merged);
  EXPECT_EQ(a.total_counterexamples, b.total_counterexamples);
  EXPECT_EQ(a.worst_response, b.worst_response);  // exact
  EXPECT_TRUE(a.metrics == b.metrics);
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
    EXPECT_EQ(a.counterexamples[i].dead_at_start,
              b.counterexamples[i].dead_at_start);
    EXPECT_EQ(a.counterexamples[i].dead_links_at_start,
              b.counterexamples[i].dead_links_at_start);
    EXPECT_EQ(a.counterexamples[i].crashes, b.counterexamples[i].crashes);
    EXPECT_EQ(a.counterexamples[i].link_crashes,
              b.counterexamples[i].link_crashes);
    EXPECT_EQ(a.counterexamples[i].silences, b.counterexamples[i].silences);
    EXPECT_EQ(a.counterexamples[i].outputs_lost,
              b.counterexamples[i].outputs_lost);
  }
}

TEST(Certify, PaperExample1Solution1CertifiesItsClaim) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CertifyReport report = certify(schedule);
  EXPECT_TRUE(report.certified);
  EXPECT_EQ(report.max_failures, 1);
  EXPECT_EQ(report.subsets, 4u);  // {}, {P1}, {P2}, {P3}
  EXPECT_GT(report.branches, 3u);
  EXPECT_TRUE(report.counterexamples.empty());
  EXPECT_EQ(report.total_counterexamples, 0u);
  EXPECT_FALSE(is_infinite(report.worst_response));
  // The certified worst response bounds the single-crash transient sweep.
  EXPECT_TRUE(time_ge(report.worst_response, schedule.makespan()));
}

TEST(Certify, PaperExample2Solution2CertifiesItsClaim) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const CertifyReport report = certify(schedule);
  EXPECT_TRUE(report.certified) << report.to_text(*ex.problem.architecture);
}

TEST(Certify, BaseScheduleClaimingK1IsRefuted) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  CertifySpec spec;
  spec.max_failures = 1;
  const CertifyReport report = certify(schedule, spec);
  EXPECT_FALSE(report.certified);
  EXPECT_GT(report.total_counterexamples, 0u);
  ASSERT_FALSE(report.counterexamples.empty());

  // Every recorded counterexample really does violate the oracle, and the
  // first one survives the shrinker (the certify -> shrink route the tool
  // exposes).
  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const Simulator simulator(schedule);
  for (const CertifyBranch& cex : report.counterexamples) {
    const MissionPlan plan = counterexample_plan(cex);
    const Verdict verdict = oracle.judge(plan, run_mission(schedule, plan));
    EXPECT_FALSE(verdict.ok());
    EXPECT_TRUE(verdict.outputs_lost);
  }
  const ShrinkResult shrunk =
      shrink(simulator, oracle, counterexample_plan(report.counterexamples[0]));
  EXPECT_LE(shrunk.final_events, shrunk.initial_events);
  EXPECT_FALSE(shrunk.violations.empty());
}

TEST(Certify, SingleLinkDeathRefutesPassiveCommRedundancy) {
  // Solution 1 masks K=1 processor crashes but routes every replica over
  // the one bus — a single link death loses outputs. The L budget must
  // find that, and the counterexample must route through the oracle and
  // the shrinker like any crash counterexample does.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  ASSERT_EQ(ex.problem.architecture->link_count(), 1u);

  CertifySpec spec;
  spec.max_failures = 1;
  spec.max_link_failures = 1;
  const CertifyReport report = certify(schedule, spec);
  EXPECT_FALSE(report.certified);
  EXPECT_EQ(report.max_link_failures, 1);
  EXPECT_EQ(report.link_subsets, 2u);  // {}, {bus}
  EXPECT_GT(report.total_counterexamples, 0u);
  ASSERT_FALSE(report.counterexamples.empty());

  // Every counterexample involves the bus: the crash-only slice of this
  // sweep is the clean K=1 certificate.
  OracleSpec claimed;
  claimed.claimed_tolerance = 1;
  claimed.claimed_link_tolerance = 1;
  const Oracle oracle(schedule, claimed);
  const Simulator simulator(schedule);
  for (const CertifyBranch& cex : report.counterexamples) {
    EXPECT_TRUE(!cex.dead_links_at_start.empty() ||
                !cex.link_crashes.empty());
    const MissionPlan plan = counterexample_plan(cex);
    const Verdict verdict = oracle.judge(plan, run_mission(schedule, plan));
    EXPECT_TRUE(verdict.within_contract);
    EXPECT_FALSE(verdict.ok());
  }
  const ShrinkResult shrunk =
      shrink(simulator, oracle, counterexample_plan(report.counterexamples[0]));
  EXPECT_LE(shrunk.final_events, shrunk.initial_events);
  EXPECT_FALSE(shrunk.violations.empty());

  // Link faults are budgeted separately: the same schedule with the link
  // budget back at zero still certifies its processor claim.
  CertifySpec crash_only;
  crash_only.max_failures = 1;
  EXPECT_TRUE(certify(schedule, crash_only).certified);
}

TEST(Certify, SilenceBudgetCertifiesWithWidenedEnvelope) {
  // A fail-silent window cannot lose outputs (sends resume at the closing
  // edge), so example1 stays certified under S=1 — but the worst response
  // grows beyond the crash-only certificate, and silence branches really
  // are explored.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  const CertifyReport crash_only = certify(schedule);
  ASSERT_TRUE(crash_only.certified);

  CertifySpec spec;
  spec.max_failures = 1;
  spec.max_silences = 1;
  spec.collect_branches = true;
  const CertifyReport report = certify(schedule, spec);
  EXPECT_TRUE(report.certified) << report.to_text(*ex.problem.architecture);
  EXPECT_EQ(report.max_silences, 1);
  EXPECT_TRUE(time_ge(report.worst_response, crash_only.worst_response));

  std::size_t silence_branches = 0;
  bool crash_plus_silence = false;
  for (const CertifyBranch& branch : report.branches_list) {
    silence_branches += branch.silences.empty() ? 0u : 1u;
    for (const SilentWindow& window : branch.silences) {
      EXPECT_TRUE(time_lt(window.from, window.to));
    }
    crash_plus_silence |=
        !branch.silences.empty() &&
        (!branch.crashes.empty() || !branch.dead_at_start.empty());
  }
  EXPECT_GT(silence_branches, 0u);
  EXPECT_TRUE(crash_plus_silence);  // budgets compose, not either/or
}

TEST(Certify, ReportIsThreadCountInvariant) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule good = schedule_solution1(ex.problem).value();
  const Schedule bad = schedule_base(ex.problem).value();
  for (const Schedule* schedule : {&good, &bad}) {
    CertifySpec spec;
    spec.max_failures = 1;
    spec.threads = 1;
    const CertifyReport one = certify(*schedule, spec);
    for (const unsigned threads : {2u, 4u}) {
      spec.threads = threads;
      const CertifyReport many = certify(*schedule, spec);
      expect_same_report(one, many);
      EXPECT_EQ(one.to_json(*ex.problem.architecture),
                many.to_json(*ex.problem.architecture));
    }
  }
}

TEST(Certify, ReportIsThreadCountInvariantWithLinkAndSilenceBudgets) {
  // The extended sweep fans out over (processor subset x link subset)
  // pairs with typed first victims; partials still merge in task-index
  // order, so the certificate must stay bit-identical for any thread
  // count — link counterexamples, silence windows, and all.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CertifySpec spec;
  spec.max_failures = 1;
  spec.max_link_failures = 1;
  spec.max_silences = 1;
  spec.threads = 1;
  const CertifyReport one = certify(schedule, spec);
  EXPECT_FALSE(one.certified);  // the bus death refutes it
  for (const unsigned threads : {2u, 4u}) {
    spec.threads = threads;
    const CertifyReport many = certify(schedule, spec);
    expect_same_report(one, many);
    EXPECT_EQ(one.to_json(*ex.problem.architecture),
              many.to_json(*ex.problem.architecture));
  }
}

TEST(Certify, DedupNeverChangesTheVerdict) {
  // Dedup is exact pruning: against the naive enumerator (dedup off) the
  // verdict, the worst response, and the per-victim counterexample set
  // must be unchanged — only the branch count may drop.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule good = schedule_solution1(ex.problem).value();
  const Schedule bad = schedule_base(ex.problem).value();
  for (const Schedule* schedule_ptr : {&good, &bad}) {
    const Schedule& schedule = *schedule_ptr;
    CertifySpec naive;
    naive.max_failures = 1;
    naive.dedup = false;
    CertifySpec pruned = naive;
    pruned.dedup = true;
    const CertifyReport full = certify(schedule, naive);
    const CertifyReport deduped = certify(schedule, pruned);
    EXPECT_EQ(full.certified, deduped.certified);
    EXPECT_EQ(full.worst_response, deduped.worst_response);
    EXPECT_EQ(full.total_counterexamples == 0,
              deduped.total_counterexamples == 0);
    EXPECT_LE(deduped.branches, full.branches);
    // At K=1 there is a single crash level, so the pruned and naive runs
    // see the same candidate sets: kept + merged must cover them exactly.
    EXPECT_EQ(deduped.instants_kept + deduped.instants_merged,
              full.instants_kept);
  }
}

TEST(Certify, DedupNeverChangesTheVerdictForLinkDeaths) {
  // Same exactness contract as for crashes, one class over: at L=1 there
  // is a single link-death level, so the pruned run's kept + merged
  // instants must cover the naive run's candidate set exactly.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CertifySpec naive;
  naive.max_failures = 0;
  naive.max_link_failures = 1;
  naive.dedup = false;
  CertifySpec pruned = naive;
  pruned.dedup = true;
  const CertifyReport full = certify(schedule, naive);
  const CertifyReport deduped = certify(schedule, pruned);
  EXPECT_EQ(full.certified, deduped.certified);
  EXPECT_EQ(full.worst_response, deduped.worst_response);
  EXPECT_EQ(full.total_counterexamples == 0,
            deduped.total_counterexamples == 0);
  EXPECT_LE(deduped.branches, full.branches);
  EXPECT_EQ(deduped.instants_kept + deduped.instants_merged,
            full.instants_kept);
}

TEST(Certify, DedupNeverChangesTheVerdictForSilences) {
  // Silence candidates are (from, to) pairs, so the naive and pruned
  // instant ledgers are not directly comparable — but the verdict, the
  // worst response, and whether any counterexample exists must agree,
  // and pruning can only shrink the branch count.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CertifySpec naive;
  naive.max_failures = 0;
  naive.max_silences = 1;
  naive.dedup = false;
  CertifySpec pruned = naive;
  pruned.dedup = true;
  const CertifyReport full = certify(schedule, naive);
  const CertifyReport deduped = certify(schedule, pruned);
  EXPECT_EQ(full.certified, deduped.certified);
  EXPECT_EQ(full.worst_response, deduped.worst_response);
  EXPECT_EQ(full.total_counterexamples == 0,
            deduped.total_counterexamples == 0);
  EXPECT_LE(deduped.branches, full.branches);
  EXPECT_GT(deduped.instants_merged, 0u);
}

TEST(Certify, RandomK2ProblemCertifiesToDepthTwo) {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.processors = 4;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  const OwnedProblem ex = workload::random_problem(params);
  const auto scheduled = schedule_solution2(ex.problem);
  ASSERT_TRUE(scheduled.has_value()) << scheduled.error().message;
  ASSERT_EQ(scheduled->failures_tolerated(), 2);

  const CertifyReport report = certify(scheduled.value());
  EXPECT_EQ(report.max_failures, 2);
  EXPECT_EQ(report.subsets, 1u + 4u + 6u);  // C(4,0)+C(4,1)+C(4,2)
  EXPECT_TRUE(report.certified) << report.to_text(*ex.problem.architecture);

  // Depth-two exploration really happened: some branch carries two
  // mid-run crashes.
  bool depth_two = false;
  CertifySpec collect;
  collect.collect_branches = true;
  const CertifyReport branches = certify(scheduled.value(), collect);
  for (const CertifyBranch& branch : branches.branches_list) {
    depth_two |= branch.crashes.size() == 2;
  }
  EXPECT_TRUE(depth_two);
}

TEST(Certify, ColdCacheChangesNothingWarmCacheReusesLeaves) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  // Cold cache: every lookup misses; the report (verdict, counts,
  // counterexamples) is byte-identical to cache-off.
  const CertifyReport off = certify(schedule);
  CertifyCache cache;
  CertifySpec with_cache;
  with_cache.cache = &cache;
  const CertifyReport cold = certify(schedule, with_cache);
  expect_same_report(off, cold);
  EXPECT_EQ(cold.leaves_reused, 0u);
  EXPECT_EQ(cold.leaves_fresh, cold.branches);
  EXPECT_GT(cache.size(), 0u);

  // Warm cache, same schedule: same verdict and branch structure, but a
  // nonzero fraction of leaves served without simulation (forks and the
  // cache-accounting fields legitimately shrink, so compare the verdict
  // surface, not the whole report).
  const CertifyReport warm = certify(schedule, with_cache);
  EXPECT_EQ(off.certified, warm.certified);
  EXPECT_EQ(off.subsets, warm.subsets);
  EXPECT_EQ(off.branches, warm.branches);
  EXPECT_EQ(off.instants_kept, warm.instants_kept);
  EXPECT_EQ(off.instants_merged, warm.instants_merged);
  EXPECT_EQ(off.total_counterexamples, warm.total_counterexamples);
  EXPECT_EQ(off.worst_response, warm.worst_response);
  EXPECT_LT(warm.forks, cold.forks);
  EXPECT_GT(warm.leaves_reused, 0u);
  EXPECT_EQ(warm.leaves_reused + warm.leaves_fresh, warm.branches);
  EXPECT_LT(warm.events_simulated, cold.events_simulated);
}

TEST(Certify, WarmCacheReuseIsThreadCountInvariant) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const auto warm_report = [&](unsigned threads) {
    CertifyCache cache;
    CertifySpec spec;
    spec.cache = &cache;
    spec.threads = threads;
    (void)certify(schedule, spec);  // populate
    return certify(schedule, spec);
  };
  const CertifyReport one = warm_report(1);
  for (const unsigned threads : {2u, 8u}) {
    const CertifyReport many = warm_report(threads);
    expect_same_report(one, many);
    EXPECT_EQ(one.leaves_reused, many.leaves_reused);
    EXPECT_EQ(one.leaves_fresh, many.leaves_fresh);
    EXPECT_EQ(one.events_simulated, many.events_simulated);
  }
  EXPECT_GT(one.leaves_reused, 0u);
}

TEST(Certify, CacheKeysOnScheduleBytesNotJustTheProblem) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sol1 = schedule_solution1(ex.problem).value();
  const Schedule sol2 = schedule_solution2(ex.problem).value();
  ASSERT_NE(schedule_hash(sol1), schedule_hash(sol2));

  // A cache warmed by one schedule must not serve another: the second
  // schedule's sweep is all-fresh, as if the cache were cold.
  CertifyCache cache;
  CertifySpec spec;
  spec.cache = &cache;
  (void)certify(sol1, spec);
  const std::size_t after_first = cache.size();
  const CertifyReport other = certify(sol2, spec);
  EXPECT_EQ(other.leaves_reused, 0u);
  EXPECT_EQ(other.leaves_fresh, other.branches);
  expect_same_report(certify(sol2), other);
  EXPECT_GT(cache.size(), after_first);
}

TEST(Certify, ResponseBoundRefutesWhenTooTight) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CertifyReport open = certify(schedule);
  ASSERT_TRUE(open.certified);

  CertifySpec generous;
  generous.response_bound = open.worst_response;
  EXPECT_TRUE(certify(schedule, generous).certified);

  CertifySpec tight;
  tight.response_bound = open.worst_response - 0.5;
  const CertifyReport refuted = certify(schedule, tight);
  EXPECT_FALSE(refuted.certified);
  ASSERT_FALSE(refuted.counterexamples.empty());
  EXPECT_FALSE(refuted.counterexamples[0].outputs_lost);
  EXPECT_TRUE(time_gt(refuted.counterexamples[0].response_time,
                      tight.response_bound));
}

TEST(Certify, CounterexamplePlanRoundTrips) {
  CertifyBranch branch;
  branch.dead_at_start = {ProcessorId{2}};
  branch.dead_links_at_start = {LinkId{1}};
  branch.crashes = {FailureEvent{ProcessorId{0}, 3.5}};
  branch.link_crashes = {LinkFailureEvent{LinkId{0}, 4.25}};
  branch.silences = {SilentWindow{ProcessorId{1}, 2.0, 5.5}};
  const MissionPlan plan = counterexample_plan(branch);
  EXPECT_EQ(plan.iterations, 1);
  EXPECT_EQ(plan.dead_at_start, branch.dead_at_start);
  EXPECT_EQ(plan.dead_links_at_start, branch.dead_links_at_start);
  ASSERT_EQ(plan.failures.size(), 1u);
  EXPECT_EQ(plan.failures[0].iteration, 0);
  EXPECT_TRUE(plan.failures[0].event == branch.crashes[0]);
  ASSERT_EQ(plan.link_failures.size(), 1u);
  EXPECT_EQ(plan.link_failures[0].iteration, 0);
  EXPECT_TRUE(plan.link_failures[0].event == branch.link_crashes[0]);
  ASSERT_EQ(plan.silences.size(), 1u);
  EXPECT_EQ(plan.silences[0].iteration, 0);
  EXPECT_TRUE(plan.silences[0].window == branch.silences[0]);
}

TEST(Certify, ChainRefutationNamesTheViolatedConstraint) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CertifyReport scalar = certify(schedule);
  ASSERT_TRUE(scalar.certified);

  // A generous chain beside an impossibly tight one: every branch serves
  // its outputs, so every counterexample is a pure chain violation naming
  // exactly the tight constraint.
  CertifySpec spec;
  spec.latency_constraints.push_back(
      LatencyConstraint{"roomy", "I", "O", 100.0});
  spec.latency_constraints.push_back(
      LatencyConstraint{"tight", "A", "E", 0.01});
  const CertifyReport report = certify(schedule, spec);
  EXPECT_FALSE(report.certified);
  ASSERT_EQ(report.latency_constraints.size(), 2u);
  ASSERT_EQ(report.worst_chain_latency.size(), 2u);
  ASSERT_FALSE(report.counterexamples.empty());
  for (const CertifyBranch& cex : report.counterexamples) {
    EXPECT_FALSE(cex.outputs_lost);
    ASSERT_EQ(cex.violated_constraints.size(), 1u);
    EXPECT_EQ(cex.violated_constraints[0], "tight");
  }

  // The certify -> oracle -> shrink route a labeled counterexample rides:
  // the branch re-judged through an oracle carrying the same constraints
  // violates them, and the shrunk reproducer still names the chain.
  OracleSpec ospec;
  ospec.latency_constraints = spec.latency_constraints;
  const Oracle oracle(schedule, ospec);
  const MissionPlan plan = counterexample_plan(report.counterexamples[0]);
  const Verdict verdict = oracle.judge(plan, run_mission(schedule, plan));
  ASSERT_FALSE(verdict.ok());
  EXPECT_TRUE(verdict.latency_exceeded);
  ASSERT_EQ(verdict.violated_constraints.size(), 1u);
  EXPECT_EQ(verdict.violated_constraints[0], "tight");

  const Simulator simulator(schedule);
  const ShrinkResult shrunk = shrink(simulator, oracle, plan);
  ASSERT_FALSE(shrunk.violations.empty());
  bool names_chain = false;
  for (const std::string& violation : shrunk.violations) {
    if (violation.find("\"tight\"") != std::string::npos) names_chain = true;
  }
  EXPECT_TRUE(names_chain) << shrunk.violations[0];

  // Chain-constrained reports are thread-count deterministic like scalar
  // ones, including the per-branch violated lists and the chain envelopes.
  CertifySpec threaded = spec;
  threaded.threads = 4;
  const CertifyReport other = certify(schedule, threaded);
  expect_same_report(report, other);
  ASSERT_EQ(other.worst_chain_latency.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(report.worst_chain_latency[i], other.worst_chain_latency[i]);
  }
  ASSERT_EQ(report.counterexamples.size(), other.counterexamples.size());
  for (std::size_t i = 0; i < report.counterexamples.size(); ++i) {
    EXPECT_EQ(report.counterexamples[i].violated_constraints,
              other.counterexamples[i].violated_constraints);
  }

  // Generous bounds on both chains certify clean and record a finite
  // per-chain envelope bounded by each chain's own constraint.
  CertifySpec roomy;
  roomy.latency_constraints.push_back(
      LatencyConstraint{"spine", "A", "E", 100.0});
  const CertifyReport clean = certify(schedule, roomy);
  EXPECT_TRUE(clean.certified)
      << clean.to_text(*ex.problem.architecture);
  ASSERT_EQ(clean.worst_chain_latency.size(), 1u);
  EXPECT_FALSE(is_infinite(clean.worst_chain_latency[0]));
  EXPECT_TRUE(time_le(clean.worst_chain_latency[0], 100.0));
  // Adding a satisfied chain never changes the scalar verdict surface.
  EXPECT_EQ(clean.branches, scalar.branches);
  EXPECT_EQ(clean.worst_response, scalar.worst_response);
}

TEST(Certify, MalformedChainSpecsThrowThroughEveryEntryPoint) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  const auto bad_specs = [] {
    std::vector<std::vector<LatencyConstraint>> specs;
    // Endpoint absent from the graph.
    specs.push_back({LatencyConstraint{"c", "Zeta", "E", 5.0}});
    specs.push_back({LatencyConstraint{"c", "A", "Zeta", 5.0}});
    // Duplicate names.
    specs.push_back({LatencyConstraint{"c", "A", "E", 5.0},
                     LatencyConstraint{"c", "I", "O", 9.0}});
    // Zero / negative / non-finite bound.
    specs.push_back({LatencyConstraint{"c", "A", "E", 0.0}});
    specs.push_back({LatencyConstraint{"c", "A", "E", -1.0}});
    specs.push_back({LatencyConstraint{"c", "A", "E", kInfinite}});
    return specs;
  }();

  for (const std::vector<LatencyConstraint>& constraints : bad_specs) {
    CertifySpec spec;
    spec.latency_constraints = constraints;
    EXPECT_THROW((void)certify(schedule, spec), std::invalid_argument);

    const CertifyShardSpec shard{0, 1};
    EXPECT_THROW((void)certify_shard(schedule, spec, shard,
                                     [](CertifyTaskPartial&&) {},
                                     [] { return false; }),
                 std::invalid_argument);

    OracleSpec ospec;
    ospec.latency_constraints = constraints;
    EXPECT_THROW(Oracle(schedule, ospec), std::invalid_argument);
  }

  // A replica-less endpoint throws the same way from certify (a bare
  // schedule places nothing, so every operation lacks replicas).
  const Schedule empty(ex.problem, HeuristicKind::kBase);
  CertifySpec unplaced;
  unplaced.latency_constraints.push_back(
      LatencyConstraint{"c", "A", "E", 5.0});
  EXPECT_THROW((void)certify(empty, unplaced), std::invalid_argument);
}

}  // namespace
}  // namespace ftsched::campaign
