// The delta-debugging shrinker: minimized plans still fail, are 1-minimal,
// shrink deterministically, and survive a serialize/parse round trip.
#include <gtest/gtest.h>

#include <stdexcept>

#include "campaign/oracle.hpp"
#include "campaign/runner.hpp"
#include "campaign/shrink.hpp"
#include "io/scenario_format.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

struct Attacked {
  workload::OwnedProblem ex = workload::paper_example1();
  Schedule schedule;
  Simulator simulator;
  Oracle oracle;

  // K=0 base schedule judged under a claim of K=1: every lone crash that
  // hits a replica-hosting processor is a genuine violation.
  Attacked()
      : schedule(schedule_base(ex.problem).value()),
        simulator(schedule),
        oracle(schedule, OracleSpec{.claimed_tolerance = 1}) {}
};

// A deliberately noisy violating plan: one lethal dead-at-start plus a
// pile of benign noise the shrinker must strip away.
MissionPlan noisy_violating_plan(const Attacked& attacked) {
  MissionPlan plan;
  plan.iterations = 3;
  plan.dead_at_start.push_back(ProcessorId(0));
  plan.suspected_at_start.push_back(ProcessorId(1));
  plan.silences.push_back(
      MissionSilence{1, SilentWindow{ProcessorId(1), 0.5, 2.5}});
  plan.silences.push_back(
      MissionSilence{2, SilentWindow{ProcessorId(2), 1.0, 3.0}});
  const Verdict verdict = attacked.oracle.judge(
      plan, run_mission(attacked.simulator, plan));
  EXPECT_FALSE(verdict.ok());
  return plan;
}

// Removing any one event from `plan` must make the violation disappear.
void expect_one_minimal(const Attacked& attacked, const MissionPlan& plan) {
  const auto still_fails = [&](const MissionPlan& candidate) {
    return !attacked.oracle
                .judge(candidate, run_mission(attacked.simulator, candidate))
                .ok();
  };
  ASSERT_TRUE(still_fails(plan));
  for (std::size_t i = 0; i < plan.dead_at_start.size(); ++i) {
    MissionPlan candidate = plan;
    candidate.dead_at_start.erase(candidate.dead_at_start.begin() +
                                  static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(still_fails(candidate)) << "dead_at_start " << i;
  }
  for (std::size_t i = 0; i < plan.failures.size(); ++i) {
    MissionPlan candidate = plan;
    candidate.failures.erase(candidate.failures.begin() +
                             static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(still_fails(candidate)) << "failure " << i;
  }
  for (std::size_t i = 0; i < plan.silences.size(); ++i) {
    MissionPlan candidate = plan;
    candidate.silences.erase(candidate.silences.begin() +
                             static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(still_fails(candidate)) << "silence " << i;
  }
  for (std::size_t i = 0; i < plan.link_failures.size(); ++i) {
    MissionPlan candidate = plan;
    candidate.link_failures.erase(candidate.link_failures.begin() +
                                  static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(still_fails(candidate)) << "link failure " << i;
  }
}

TEST(Shrink, NoisyPlanShrinksToSingleEvent) {
  const Attacked attacked;
  const MissionPlan plan = noisy_violating_plan(attacked);
  const ShrinkResult result =
      shrink(attacked.simulator, attacked.oracle, plan);
  EXPECT_EQ(result.initial_events, plan.event_count());
  EXPECT_EQ(result.final_events, 1u);
  EXPECT_EQ(result.plan.event_count(), 1u);
  EXPECT_EQ(result.plan.iterations, 1);
  EXPECT_FALSE(result.violations.empty());
  EXPECT_GT(result.simulations, 0u);
  // Still failing, and 1-minimal by direct check.
  expect_one_minimal(attacked, result.plan);
}

TEST(Shrink, CrashInstantSnapsToGanttBoundary) {
  const Attacked attacked;
  // A mid-run crash at an arbitrary instant; the shrinker should land on a
  // replica start/finish boundary (or 0) of the crashed processor.
  MissionPlan plan;
  plan.iterations = 1;
  bool found = false;
  for (int proc = 0;
       proc <
       static_cast<int>(attacked.ex.problem.architecture->processor_count());
       ++proc) {
    plan.failures.clear();
    plan.failures.push_back(MissionFailure{
        0, FailureEvent{ProcessorId(proc),
                        attacked.schedule.makespan() * 0.37}});
    if (!attacked.oracle
             .judge(plan, run_mission(attacked.simulator, plan))
             .ok()) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no processor crash violates the K=1 claim?";

  const ShrinkResult result =
      shrink(attacked.simulator, attacked.oracle, plan);
  ASSERT_EQ(result.plan.event_count(), 1u);
  if (!result.plan.failures.empty()) {
    const FailureEvent& event = result.plan.failures.front().event;
    bool on_boundary = time_eq(event.time, 0);
    for (const ScheduledOperation* op :
         attacked.schedule.operations_on(event.processor)) {
      on_boundary = on_boundary || time_eq(event.time, op->start) ||
                    time_eq(event.time, op->end);
    }
    EXPECT_TRUE(on_boundary) << "crash at " << event.time;
  }
  // Simplification may have turned the crash into dead-at-start instead —
  // also canonical. Either way: 1-minimal and still failing.
  expect_one_minimal(attacked, result.plan);
}

TEST(Shrink, DeterministicAcrossRuns) {
  const Attacked attacked;
  const MissionPlan plan = noisy_violating_plan(attacked);
  const ShrinkResult a = shrink(attacked.simulator, attacked.oracle, plan);
  const ShrinkResult b = shrink(attacked.simulator, attacked.oracle, plan);
  const ArchitectureGraph& arch = *attacked.ex.problem.architecture;
  EXPECT_EQ(io::write_scenario(a.plan, arch),
            io::write_scenario(b.plan, arch));
  EXPECT_EQ(a.simulations, b.simulations);
}

TEST(Shrink, ShrunkPlanRoundTripsThroughSerialization) {
  const Attacked attacked;
  const ShrinkResult result = shrink(attacked.simulator, attacked.oracle,
                                     noisy_violating_plan(attacked));
  const ArchitectureGraph& arch = *attacked.ex.problem.architecture;
  const std::string text = io::write_scenario(result.plan, arch);
  const Expected<MissionPlan> parsed = io::read_scenario(text, arch);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  // The replayed plan reproduces the violation bit-exactly.
  const Verdict verdict = attacked.oracle.judge(
      parsed.value(), run_mission(attacked.simulator, parsed.value()));
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.violations, result.violations);
  EXPECT_EQ(io::write_scenario(parsed.value(), arch), text);
}

TEST(Shrink, CampaignViolationShrinks) {
  // End-to-end: take the first violation an actual campaign finds against
  // the under-replicated claim and minimize it.
  const Attacked attacked;
  CampaignOptions options;
  options.scenarios = 100;
  options.threads = 1;
  options.seed = 13;
  options.oracle.claimed_tolerance = 1;
  options.spec.max_processor_failures = 1;
  options.spec.max_iterations = 3;
  options.spec.silence_probability = 0.2;
  options.spec.suspect_probability = 0.2;
  const CampaignReport report = run_campaign(attacked.schedule, options);
  ASSERT_FALSE(report.violations.empty());
  const ShrinkResult result = shrink(attacked.simulator, attacked.oracle,
                                     report.violations.front().plan);
  EXPECT_LE(result.final_events, result.initial_events);
  EXPECT_EQ(result.final_events, 1u);
  expect_one_minimal(attacked, result.plan);
}

TEST(Shrink, SimulationBudgetCapsWorkAndReportsExhaustion) {
  const Attacked attacked;
  const MissionPlan plan = noisy_violating_plan(attacked);

  // A budget far below what full minimization needs: the shrinker must
  // stop, flag exhaustion, and still hand back a FAILING best-so-far plan.
  ShrinkOptions capped;
  capped.max_simulations = 3;
  const ShrinkResult result =
      shrink(attacked.simulator, attacked.oracle, plan, capped);
  EXPECT_TRUE(result.budget_exhausted);
  // The precondition judge counts, and the final re-judge of the
  // best-so-far plan may overshoot the cap by at most one.
  EXPECT_LE(result.simulations, capped.max_simulations + 1);
  EXPECT_LE(result.final_events, result.initial_events);
  const Verdict verdict = attacked.oracle.judge(
      result.plan, run_mission(attacked.simulator, result.plan));
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(result.violations, verdict.violations);
}

TEST(Shrink, UnlimitedBudgetMatchesTheUncappedOverload) {
  const Attacked attacked;
  const MissionPlan plan = noisy_violating_plan(attacked);
  const ShrinkResult uncapped =
      shrink(attacked.simulator, attacked.oracle, plan);
  const ShrinkResult unlimited =
      shrink(attacked.simulator, attacked.oracle, plan, ShrinkOptions{});
  EXPECT_FALSE(uncapped.budget_exhausted);
  EXPECT_FALSE(unlimited.budget_exhausted);
  EXPECT_EQ(uncapped.simulations, unlimited.simulations);
  const ArchitectureGraph& arch = *attacked.ex.problem.architecture;
  EXPECT_EQ(io::write_scenario(uncapped.plan, arch),
            io::write_scenario(unlimited.plan, arch));

  // A budget at least as large as the uncapped run's cost changes nothing.
  ShrinkOptions ample;
  ample.max_simulations = uncapped.simulations;
  const ShrinkResult roomy =
      shrink(attacked.simulator, attacked.oracle, plan, ample);
  EXPECT_FALSE(roomy.budget_exhausted);
  EXPECT_EQ(io::write_scenario(roomy.plan, arch),
            io::write_scenario(uncapped.plan, arch));
}

TEST(Shrink, RejectsPassingPlan) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const Oracle oracle(schedule);
  MissionPlan benign;
  benign.iterations = 1;
  EXPECT_THROW((void)shrink(simulator, oracle, benign),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftsched::campaign
