// Subtree memoization + slack cuts must be invisible in the certificate:
// prune on/off produce byte-identical to_json at every budget mix, the
// pruned sweep is bit-identical across thread counts, the memo genuinely
// replays subtrees on the deep sweeps it exists for, and a sweep whose
// resolved budgets admit no fault is marked "empty" instead of passing as
// an exhaustive certificate.
#include <gtest/gtest.h>

#include <string>

#include "campaign/certify.hpp"
#include "campaign/slack.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

using workload::OwnedProblem;

CertifyReport run(const Schedule& schedule, CertifySpec spec, bool prune,
                  unsigned threads = 1) {
  spec.prune = prune;
  spec.threads = threads;
  return certify(schedule, spec);
}

void expect_same_certificate(const Schedule& schedule,
                             const CertifySpec& spec) {
  const CertifyReport off = run(schedule, spec, false);
  const CertifyReport on = run(schedule, spec, true);
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  EXPECT_EQ(off.to_json(arch), on.to_json(arch));
  EXPECT_EQ(off.certified, on.certified);
  EXPECT_EQ(off.branches, on.branches);
  EXPECT_EQ(off.forks, on.forks);
  EXPECT_EQ(off.instants_kept, on.instants_kept);
  EXPECT_EQ(off.instants_merged, on.instants_merged);
  EXPECT_EQ(off.total_counterexamples, on.total_counterexamples);
  EXPECT_EQ(off.worst_response, on.worst_response);  // exact
  EXPECT_FALSE(off.prune);
  EXPECT_TRUE(on.prune);
}

TEST(CertifyPrune, ByteIdenticalCertificateExample1AllKinds) {
  const OwnedProblem ex = workload::paper_example1();
  for (const Schedule& schedule :
       {schedule_base(ex.problem).value(),
        schedule_solution1(ex.problem).value(),
        schedule_solution2(ex.problem).value()}) {
    CertifySpec spec;
    spec.max_failures = 2;
    spec.max_silences = 1;
    expect_same_certificate(schedule, spec);
  }
}

TEST(CertifyPrune, ByteIdenticalCertificateExample2WithLinksAndBound) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  CertifySpec spec;
  spec.max_failures = 2;
  spec.max_link_failures = 1;
  spec.max_silences = 1;
  expect_same_certificate(schedule, spec);
  // A finite response bound exercises the allowance-aware digest and the
  // slack machinery; late branches must come out identical too.
  spec.response_bound = schedule.makespan() * 1.5;
  expect_same_certificate(schedule, spec);
  // A bound so tight everything is late floods the counterexample cap —
  // the slack cut's arming condition — without changing the certificate.
  spec.response_bound = schedule.makespan() * 0.5;
  spec.max_counterexamples = 2;
  expect_same_certificate(schedule, spec);
}

TEST(CertifyPrune, PrunedReportIsThreadCountInvariant) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  CertifySpec spec;
  spec.max_failures = 2;
  spec.max_silences = 1;
  const std::string one = run(schedule, spec, true, 1).to_json(arch);
  for (const unsigned threads : {2u, 8u}) {
    EXPECT_EQ(one, run(schedule, spec, true, threads).to_json(arch))
        << threads << " threads";
  }
}

TEST(CertifyPrune, MemoReplaysSubtreesOnDeepSweeps) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  CertifySpec spec;
  spec.max_failures = 2;
  spec.max_silences = 1;
  const CertifyReport report = run(schedule, spec, true);
  EXPECT_TRUE(report.prune);
  EXPECT_GT(report.memo_probes, 0u);
  EXPECT_GT(report.memo_hits, 0u);
  EXPECT_GT(report.memo_branches_replayed, 0u);
  // Replay reports the events the subtree WOULD have executed (the
  // certificate counters stay a pure function of the sweep); the genuine
  // saving is the replayed branch count, which the deep bench turns into
  // branches_simulated = branches - memo_branches_replayed - slack_cuts.
  const CertifyReport off = run(schedule, spec, false);
  EXPECT_EQ(off.branches, report.branches);
  EXPECT_EQ(off.events_simulated, report.events_simulated);
  EXPECT_LT(report.memo_branches_replayed, report.branches);
}

TEST(CertifyPrune, PruneGatedOffUnderCollectBranchesAndCache) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CertifySpec spec;
  spec.max_failures = 1;
  spec.collect_branches = true;
  const CertifyReport collected = certify(schedule, spec);
  EXPECT_FALSE(collected.prune);
  EXPECT_EQ(collected.memo_probes, 0u);

  CertifySpec cached;
  cached.max_failures = 1;
  CertifyCache cache;
  cached.cache = &cache;
  const CertifyReport with_cache = certify(schedule, cached);
  EXPECT_FALSE(with_cache.prune);
  EXPECT_EQ(with_cache.memo_probes, 0u);
}

TEST(CertifyPrune, EmptySweepIsMarkedNotExhaustive) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  CertifySpec spec;
  spec.max_failures = 0;
  spec.max_link_failures = 0;
  spec.max_silences = 0;
  const CertifyReport report = certify(schedule, spec);
  // Zero resolved budgets certify exactly one branch: the fault-free run.
  EXPECT_TRUE(report.certified);
  EXPECT_EQ(report.branches, 1u);
  EXPECT_NE(report.to_json(arch).find("\"sweep\": \"empty\""),
            std::string::npos);

  CertifySpec real;
  real.max_failures = 1;
  EXPECT_NE(certify(schedule, real).to_json(arch).find(
                "\"sweep\": \"exhaustive\""),
            std::string::npos);
}

TEST(CertifyPrune, SlackCutFiresOnTightBoundSilenceSweep) {
  // The cut's arming conditions: a non-empty slack table (base schedule —
  // single replicas, no election machinery), a finite bound tight enough
  // that deferred sends provably overshoot, a leaf silence budget, and an
  // already-full counterexample cap. 79 of 1954 branches are counted late
  // without simulation on this mix, certificate still byte-identical.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  ASSERT_FALSE(SlackTable::build(schedule).empty());
  CertifySpec spec;
  spec.max_failures = 0;
  spec.max_silences = 2;
  spec.response_bound = schedule.makespan() * 0.5;
  spec.max_counterexamples = 2;
  expect_same_certificate(schedule, spec);
  EXPECT_GT(run(schedule, spec, true).slack_cuts, 0u);
}

TEST(CertifyPrune, SlackTableIsEmptyForElectionSchedules) {
  const OwnedProblem ex = workload::paper_example1();
  EXPECT_TRUE(
      SlackTable::build(schedule_solution1(ex.problem).value()).empty());
  EXPECT_TRUE(automorphism_classes(schedule_solution1(ex.problem).value())
                  .empty());
}

}  // namespace
}  // namespace ftsched::campaign
