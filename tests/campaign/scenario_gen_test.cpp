// Determinism and shape of the campaign's scenario stream.
#include <gtest/gtest.h>

#include "campaign/oracle.hpp"
#include "campaign/scenario_gen.hpp"
#include "io/scenario_format.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

Schedule example1_solution1() {
  static const workload::OwnedProblem ex = workload::paper_example1();
  return schedule_solution1(ex.problem).value();
}

const ArchitectureGraph& example1_arch() {
  static const workload::OwnedProblem ex = workload::paper_example1();
  return *ex.problem.architecture;
}

CampaignSpec rich_spec() {
  CampaignSpec spec;
  spec.max_iterations = 4;
  spec.over_budget_fraction = 0.2;
  spec.silence_probability = 0.3;
  spec.suspect_probability = 0.3;
  spec.link_failure_probability = 0.3;
  return spec;
}

TEST(ScenarioGenerator, SameSeedSameSpecIdenticalStream) {
  const Schedule schedule = example1_solution1();
  const ScenarioGenerator a(schedule, rich_spec(), 1234);
  const ScenarioGenerator b(schedule, rich_spec(), 1234);
  for (std::size_t i = 0; i < 200; ++i) {
    const CampaignScenario sa = a.scenario(i);
    const CampaignScenario sb = b.scenario(i);
    EXPECT_EQ(sa.seed, sb.seed);
    EXPECT_EQ(io::write_scenario(sa.plan, example1_arch()),
              io::write_scenario(sb.plan, example1_arch()))
        << "scenario " << i;
  }
}

TEST(ScenarioGenerator, RandomAccessIsPure) {
  const Schedule schedule = example1_solution1();
  const ScenarioGenerator gen(schedule, rich_spec(), 99);
  // Out-of-order and repeated access must match in-order access.
  const std::string forward = io::write_scenario(gen.scenario(7).plan,
                                                 example1_arch());
  (void)gen.scenario(100);
  (void)gen.scenario(3);
  EXPECT_EQ(io::write_scenario(gen.scenario(7).plan, example1_arch()),
            forward);
}

TEST(ScenarioGenerator, DifferentSeedsDiverge) {
  const Schedule schedule = example1_solution1();
  const ScenarioGenerator a(schedule, rich_spec(), 1);
  const ScenarioGenerator b(schedule, rich_spec(), 2);
  std::size_t different = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (io::write_scenario(a.scenario(i).plan, example1_arch()) !=
        io::write_scenario(b.scenario(i).plan, example1_arch())) {
      ++different;
    }
  }
  EXPECT_GT(different, 25u);
}

TEST(ScenarioGenerator, RespectsBudgetAndHorizon) {
  const Schedule schedule = example1_solution1();
  CampaignSpec spec = rich_spec();
  spec.over_budget_fraction = 0.0;
  const ScenarioGenerator gen(schedule, spec, 7);
  ASSERT_EQ(gen.budget(), schedule.failures_tolerated());
  for (std::size_t i = 0; i < 300; ++i) {
    const CampaignScenario scenario = gen.scenario(i);
    EXPECT_LE(plan_processor_faults(scenario.plan),
              static_cast<std::size_t>(gen.budget()));
    EXPECT_GE(scenario.plan.iterations, 1);
    EXPECT_LE(scenario.plan.iterations, 4);
    for (const MissionFailure& failure : scenario.plan.failures) {
      EXPECT_GE(failure.event.time, 0);
      EXPECT_LT(failure.event.time, gen.horizon());
      EXPECT_GE(failure.iteration, 0);
      EXPECT_LT(failure.iteration, scenario.plan.iterations);
    }
    for (const MissionSilence& silence : scenario.plan.silences) {
      EXPECT_LT(silence.window.from, silence.window.to);
      EXPECT_LE(silence.window.to, gen.horizon());
    }
  }
}

TEST(ScenarioGenerator, ZeroLengthWindowRepairStaysInsideTheHorizon) {
  // The repair that rescues a degenerate (from == to) draw must keep the
  // window inside the horizon — the old `from + horizon/16` could spill
  // past it when the collision landed near the end — and it must not
  // consume RNG draws, so it is a pure function of (from, horizon).
  EXPECT_EQ(repaired_window_end(0.0, 16.0), 1.0);
  EXPECT_EQ(repaired_window_end(8.0, 16.0), 9.0);
  EXPECT_EQ(repaired_window_end(15.5, 16.0), 16.0);  // clamped
  EXPECT_EQ(repaired_window_end(16.0, 16.0), 16.0);  // degenerate edge
  for (const Time horizon : {9.4, 16.0, 36.6409}) {
    for (int step = 0; step <= 20; ++step) {
      const Time from = horizon * step / 20.0;
      const Time to = repaired_window_end(from, horizon);
      EXPECT_LE(to, horizon);
      EXPECT_GE(to, from);
      if (from < horizon) {
        EXPECT_GT(to, from);
      }
    }
  }
}

TEST(ScenarioGenerator, OverBudgetScenariosExceedK) {
  const Schedule schedule = example1_solution1();
  CampaignSpec spec;
  spec.over_budget_fraction = 1.0;
  const ScenarioGenerator gen(schedule, spec, 11);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GT(plan_processor_faults(gen.scenario(i).plan),
              static_cast<std::size_t>(schedule.failures_tolerated()));
  }
}

TEST(ScenarioGenerator, EveryFaultClassAppears) {
  const Schedule schedule = example1_solution1();
  const ScenarioGenerator gen(schedule, rich_spec(), 5);
  std::size_t crashes = 0;
  std::size_t dead = 0;
  std::size_t silences = 0;
  std::size_t suspects = 0;
  std::size_t links = 0;
  std::size_t missions = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const MissionPlan plan = gen.scenario(i).plan;
    crashes += plan.failures.size();
    dead += plan.dead_at_start.size();
    silences += plan.silences.size();
    suspects += plan.suspected_at_start.size();
    links += plan.link_failures.size() + plan.dead_links_at_start.size();
    missions += plan.iterations > 1 ? 1 : 0;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(dead, 0u);
  EXPECT_GT(silences, 0u);
  EXPECT_GT(suspects, 0u);
  EXPECT_GT(links, 0u);
  EXPECT_GT(missions, 0u);
}

TEST(ScenarioGenerator, MixSeedAvalanches) {
  // Consecutive indices must not produce related seeds.
  EXPECT_NE(mix_seed(0, 0), mix_seed(0, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(0, 0));
  EXPECT_NE(mix_seed(42, 7) ^ mix_seed(42, 8),
            mix_seed(42, 9) ^ mix_seed(42, 10));
}

}  // namespace
}  // namespace ftsched::campaign
