// Canonical mission-plan rewriting and fingerprinting: the dedup key the
// campaign runner's replay cache and the certifier's uniqueness counters
// stand on. A rewrite may only merge plans whose iteration summaries are
// provably identical (see canonical.hpp for the argument per rule).
#include <gtest/gtest.h>

#include "campaign/canonical.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

MissionPlan messy_plan() {
  MissionPlan plan;
  plan.iterations = 2;
  plan.dead_at_start = {ProcessorId{2}, ProcessorId{0}, ProcessorId{2}};
  plan.suspected_at_start = {ProcessorId{1}, ProcessorId{2}};  // 2 is dead
  plan.failures.push_back(
      MissionFailure{1, FailureEvent{ProcessorId{1}, 5.0}});
  plan.failures.push_back(
      MissionFailure{1, FailureEvent{ProcessorId{1}, 3.0}});  // earlier wins
  plan.failures.push_back(
      MissionFailure{0, FailureEvent{ProcessorId{0}, 1.0}});  // dead already
  plan.silences.push_back(
      MissionSilence{0, SilentWindow{ProcessorId{1}, 4.0, 4.0}});  // empty
  plan.silences.push_back(
      MissionSilence{0, SilentWindow{ProcessorId{1}, 2.0, 4.0}});
  plan.silences.push_back(
      MissionSilence{0, SilentWindow{ProcessorId{2}, 2.0, 4.0}});  // dead
  return plan;
}

TEST(CanonicalPlan, NormalizesToTheSettledForm) {
  const MissionPlan canonical = canonical_plan(messy_plan());
  EXPECT_EQ(canonical.dead_at_start,
            (std::vector<ProcessorId>{ProcessorId{0}, ProcessorId{2}}));
  EXPECT_EQ(canonical.suspected_at_start,
            std::vector<ProcessorId>{ProcessorId{1}});
  ASSERT_EQ(canonical.failures.size(), 1u);
  EXPECT_EQ(canonical.failures[0].event.processor, ProcessorId{1});
  EXPECT_DOUBLE_EQ(canonical.failures[0].event.time, 3.0);
  ASSERT_EQ(canonical.silences.size(), 1u);
  EXPECT_EQ(canonical.silences[0].window.processor, ProcessorId{1});
}

TEST(CanonicalPlan, FingerprintIgnoresPresentationOrder) {
  MissionPlan a = messy_plan();
  MissionPlan b = messy_plan();
  std::swap(b.dead_at_start[0], b.dead_at_start[1]);
  std::swap(b.failures[0], b.failures[1]);
  EXPECT_EQ(canonical_fingerprint(a), canonical_fingerprint(b));
  EXPECT_EQ(plan_key(a), plan_key(b));

  b.failures[0].event.time += 1.0;
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(b));
}

TEST(CanonicalPlan, DistinctPatternsKeepDistinctFingerprints) {
  MissionPlan a;
  a.iterations = 1;
  a.dead_at_start = {ProcessorId{0}};
  MissionPlan b;
  b.iterations = 1;
  b.dead_at_start = {ProcessorId{1}};
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(b));
  MissionPlan c;
  c.iterations = 1;
  c.failures.push_back(MissionFailure{0, FailureEvent{ProcessorId{0}, 0.0}});
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(c));
}

TEST(CanonicalPlan, SilenceAfterTheVictimsCrashIsInert) {
  // A window opening strictly after the victim's earliest crash in the
  // same iteration silences a corpse: the crash already stopped every
  // send, so the window is dropped. A window opening AT the crash
  // instant is kept — the event queue dispatches that instant's send
  // attempts before the crash, so the window still blocks them.
  const Time crash_at = 3.0;
  MissionPlan plan;
  plan.iterations = 2;
  plan.failures.push_back(
      MissionFailure{0, FailureEvent{ProcessorId{1}, crash_at}});
  plan.silences.push_back(
      MissionSilence{0, SilentWindow{ProcessorId{1}, crash_at + 1.0, 6.0}});

  const MissionPlan canonical = canonical_plan(plan);
  EXPECT_TRUE(canonical.silences.empty());
  EXPECT_EQ(canonical.failures.size(), 1u);

  // Same-instant window: kept.
  MissionPlan boundary = plan;
  boundary.silences[0].window.from = crash_at;
  EXPECT_EQ(canonical_plan(boundary).silences.size(), 1u);
  // Window before the crash: kept.
  MissionPlan before = plan;
  before.silences[0].window.from = crash_at - 1.0;
  EXPECT_EQ(canonical_plan(before).silences.size(), 1u);
  // A crash in a LATER iteration cannot reach back into this
  // iteration's window: the silence still blocks sends here.
  MissionPlan other_iteration = plan;
  other_iteration.failures[0].iteration = 1;
  EXPECT_EQ(canonical_plan(other_iteration).silences.size(), 1u);
  // And the fingerprints agree with the rewrite: the inert form hashes
  // like the crash alone.
  MissionPlan crash_only = plan;
  crash_only.silences.clear();
  EXPECT_EQ(canonical_fingerprint(plan), canonical_fingerprint(crash_only));
  EXPECT_NE(canonical_fingerprint(boundary),
            canonical_fingerprint(crash_only));
}

TEST(CanonicalPlan, InertSilenceRewritePreservesMissionSummaries) {
  // The soundness argument run for real: crashed-then-silenced plans
  // and their canonical forms simulate identically.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Time makespan = schedule.makespan();
  MissionPlan plan;
  plan.iterations = 1;
  plan.failures.push_back(
      MissionFailure{0, FailureEvent{ProcessorId{0}, makespan / 4}});
  plan.silences.push_back(MissionSilence{
      0, SilentWindow{ProcessorId{0}, makespan / 2, makespan}});
  const MissionPlan canonical = canonical_plan(plan);
  ASSERT_TRUE(canonical.silences.empty());
  const MissionResult raw = run_mission(schedule, plan);
  const MissionResult canon = run_mission(schedule, canonical);
  ASSERT_EQ(raw.iterations.size(), canon.iterations.size());
  for (std::size_t i = 0; i < raw.iterations.size(); ++i) {
    EXPECT_EQ(raw.iterations[i].all_outputs_produced,
              canon.iterations[i].all_outputs_produced);
    EXPECT_EQ(raw.iterations[i].response_time,
              canon.iterations[i].response_time);
  }
}

TEST(CanonicalPlan, RewritePreservesMissionSummaries) {
  // The load-bearing claim behind the replay cache: a plan and its
  // canonical form produce identical iteration summaries.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const MissionPlan plan = messy_plan();
  const MissionResult raw = run_mission(schedule, plan);
  const MissionResult canon = run_mission(schedule, canonical_plan(plan));
  ASSERT_EQ(raw.iterations.size(), canon.iterations.size());
  for (std::size_t i = 0; i < raw.iterations.size(); ++i) {
    EXPECT_EQ(raw.iterations[i].all_outputs_produced,
              canon.iterations[i].all_outputs_produced);
    EXPECT_EQ(raw.iterations[i].response_time,
              canon.iterations[i].response_time);
    EXPECT_EQ(raw.iterations[i].timeouts, canon.iterations[i].timeouts);
    EXPECT_EQ(raw.iterations[i].elections, canon.iterations[i].elections);
    EXPECT_EQ(raw.iterations[i].transfers, canon.iterations[i].transfers);
    EXPECT_EQ(raw.iterations[i].known_failed,
              canon.iterations[i].known_failed);
    EXPECT_EQ(raw.iterations[i].suspected, canon.iterations[i].suspected);
  }
}

}  // namespace
}  // namespace ftsched::campaign
