// Counterexample-guided repair: a refuted schedule (the K=2 bus workload
// judged under K=1 + one link death) is repaired into a certified one by
// accepted constraint moves; the repair log and report are byte-identical
// for any thread count; the confirmation sweep replays the certificate
// through the warm cache and reuses a nonzero fraction of leaves; an
// already-certified schedule repairs in zero moves; an impossible claim
// reports exhaustion instead of looping.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "campaign/certify.hpp"
#include "campaign/repair.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched::campaign {
namespace {

using workload::OwnedProblem;

// The data/certify_k2.ft workload: 10-op DAG, 4 bus-connected processors,
// K=2 replication. Its solution-2 schedule certifies the K=2 processor
// claim but is refuted under K=1 + one link death (the bus is a shared
// point of failure) — the committed refuted repair target.
OwnedProblem k2_bus_problem() {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.processors = 4;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  return workload::random_problem(params);
}

RepairSpec k1_l1_spec() {
  RepairSpec spec;
  spec.certify.max_failures = 1;
  spec.certify.max_link_failures = 1;
  return spec;
}

TEST(Repair, RefutedBusWorkloadRepairsToCertified) {
  const OwnedProblem ex = k2_bus_problem();

  // Precondition: the claim really is refuted before repair.
  const Schedule before = schedule_solution2(ex.problem).value();
  CertifySpec cspec = k1_l1_spec().certify;
  ASSERT_FALSE(certify(before, cspec).certified);

  const RepairReport report =
      repair(ex.problem, HeuristicKind::kSolution2, k1_l1_spec());
  EXPECT_TRUE(report.certified) << report.failure;
  EXPECT_TRUE(report.failure.empty());
  EXPECT_FALSE(report.moves_exhausted);
  EXPECT_FALSE(report.rounds_exhausted);
  ASSERT_TRUE(report.schedule.has_value());
  ASSERT_TRUE(report.certificate.has_value());
  EXPECT_TRUE(report.certificate->certified);

  // At least one accepted move, recorded on the round it produced.
  ASSERT_GE(report.rounds.size(), 2u);
  EXPECT_FALSE(report.rounds.front().certified);
  EXPECT_FALSE(report.rounds.front().has_move);
  EXPECT_TRUE(report.rounds.back().certified);
  EXPECT_TRUE(report.rounds.back().has_move);
  EXPECT_FALSE(report.constraints.empty());

  // The constraints reproduce the repaired schedule through the ordinary
  // scheduler entry points, and it re-certifies from scratch (no cache).
  SchedulerOptions opts;
  opts.constraints = report.constraints;
  opts.active_comm_deps = report.active_comm_deps;
  const Expected<Schedule> replayed =
      schedule(ex.problem, report.kind, opts);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;
  EXPECT_EQ(schedule_hash(replayed.value()),
            schedule_hash(report.schedule.value()));
  EXPECT_TRUE(certify(replayed.value(), cspec).certified);
}

TEST(Repair, ConfirmationSweepReusesCachedLeaves) {
  const OwnedProblem ex = k2_bus_problem();
  const RepairReport report =
      repair(ex.problem, HeuristicKind::kSolution2, k1_l1_spec());
  ASSERT_TRUE(report.certified);

  // Incremental re-certification evidence: the confirmation sweep re-runs
  // the final certificate through the warm replay cache and serves a
  // nonzero fraction of its leaves from it, same verdict.
  ASSERT_TRUE(report.confirmation.has_value());
  EXPECT_TRUE(report.confirmation->certified);
  EXPECT_GT(report.confirmation->leaves_reused, 0u);
  EXPECT_EQ(report.confirmation->leaves_reused +
                report.confirmation->leaves_fresh,
            report.confirmation->branches);
  EXPECT_GT(report.cache_entries, 0u);

  // The same evidence is exported as a metrics counter.
  const auto reused =
      report.metrics.counters.find("repair.confirmation_leaves_reused");
  ASSERT_NE(reused, report.metrics.counters.end());
  EXPECT_GT(reused->second, 0u);
}

TEST(Repair, ReportByteIdenticalAcrossThreadCounts) {
  const OwnedProblem ex = k2_bus_problem();
  RepairSpec one = k1_l1_spec();
  one.certify.threads = 1;
  RepairSpec eight = k1_l1_spec();
  eight.certify.threads = 8;

  const RepairReport a =
      repair(ex.problem, HeuristicKind::kSolution2, one);
  const RepairReport b =
      repair(ex.problem, HeuristicKind::kSolution2, eight);
  const AlgorithmGraph& graph = *ex.problem.algorithm;
  const ArchitectureGraph& arch = *ex.problem.architecture;
  EXPECT_EQ(a.to_json(graph, arch), b.to_json(graph, arch));
  EXPECT_EQ(a.to_text(graph, arch), b.to_text(graph, arch));
  ASSERT_TRUE(a.schedule.has_value());
  ASSERT_TRUE(b.schedule.has_value());
  EXPECT_EQ(schedule_hash(a.schedule.value()),
            schedule_hash(b.schedule.value()));
}

TEST(Repair, AlreadyCertifiedClaimNeedsNoMoves) {
  const OwnedProblem ex = k2_bus_problem();
  RepairSpec spec;  // default budgets: the schedule's own K=2 claim
  const RepairReport report =
      repair(ex.problem, HeuristicKind::kSolution2, spec);
  EXPECT_TRUE(report.certified);
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_TRUE(report.rounds[0].certified);
  EXPECT_FALSE(report.rounds[0].has_move);
  EXPECT_TRUE(report.constraints.empty());
  ASSERT_TRUE(report.confirmation.has_value());
  EXPECT_GT(report.confirmation->leaves_reused, 0u);
}

TEST(Repair, ImpossibleClaimReportsExhaustionNotALoop) {
  // K=2 processor faults PLUS the bus: killing both chain-capable hosts
  // and the only link is within budget and unfixable — every output needs
  // a full local chain on a surviving processor, and no third processor
  // may host one (P2 cannot run `out`, P3 cannot run `in`).
  const OwnedProblem ex = k2_bus_problem();
  RepairSpec spec;
  spec.certify.max_failures = 2;
  spec.certify.max_link_failures = 1;
  spec.max_rounds = 4;
  const RepairReport report =
      repair(ex.problem, HeuristicKind::kSolution2, spec);
  EXPECT_FALSE(report.certified);
  EXPECT_TRUE(report.moves_exhausted || report.rounds_exhausted);
  EXPECT_FALSE(report.failure.empty());
  ASSERT_TRUE(report.schedule.has_value());
  ASSERT_FALSE(report.rounds.empty());
  EXPECT_FALSE(report.rounds.back().certified);
  // The final counterexample is carried in the last round.
  EXPECT_GT(report.rounds.back().counterexample.event_count(), 0u);
}

TEST(Repair, PreferredCandidatePicksLowestMakespanEarliestTie) {
  // Move ordering: among surviving candidates the repaired schedule with
  // the lowest makespan wins; equal makespans keep the earliest proposal
  // so the choice stays deterministic across proposal enumeration.
  EXPECT_EQ(preferred_candidate({5.0, 3.0, 3.0, 4.0}), 1u);
  EXPECT_EQ(preferred_candidate({7.5}), 0u);
  EXPECT_EQ(preferred_candidate({2.0, 2.0, 2.0}), 0u);
  EXPECT_EQ(preferred_candidate({9.0, 1.0}), 1u);
  EXPECT_THROW((void)preferred_candidate({}), std::invalid_argument);
}

TEST(Repair, RoundsRecordSurvivorsAndMakespan) {
  const OwnedProblem ex = k2_bus_problem();
  const RepairReport report =
      repair(ex.problem, HeuristicKind::kSolution2, k1_l1_spec());
  ASSERT_TRUE(report.certified);
  ASSERT_GE(report.rounds.size(), 2u);
  for (const RepairRound& round : report.rounds) {
    EXPECT_GT(round.makespan, 0.0);
    if (round.has_move) {
      // An accepted move implies at least one surviving candidate.
      EXPECT_GE(round.candidates_surviving, 1u);
    }
  }
}

TEST(Repair, PaperExample1Solution1CertifiesInRoundZero) {
  const OwnedProblem ex = workload::paper_example1();
  const RepairReport report =
      repair(ex.problem, HeuristicKind::kSolution1, RepairSpec{});
  EXPECT_TRUE(report.certified);
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_FALSE(report.rounds[0].has_move);
}

}  // namespace
}  // namespace ftsched::campaign
