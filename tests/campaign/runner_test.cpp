// The parallel campaign runner: clean schedules survive, thread count
// never changes the verdict, under-replicated claims are caught, and the
// randomized campaign agrees with exhaustive subset injection.
#include <gtest/gtest.h>

#include <string>

#include "campaign/certify.hpp"
#include "campaign/runner.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched::campaign {
namespace {

CampaignOptions rich_options(std::size_t scenarios, std::uint64_t seed) {
  CampaignOptions options;
  options.scenarios = scenarios;
  options.seed = seed;
  options.threads = 1;
  options.spec.max_iterations = 3;
  options.spec.over_budget_fraction = 0.2;
  options.spec.silence_probability = 0.15;
  options.spec.suspect_probability = 0.15;
  return options;
}

TEST(CampaignRunner, Example1Solution1SurvivesCampaign) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CampaignReport report =
      run_campaign(schedule, rich_options(400, 42));
  EXPECT_EQ(report.scenarios_run, 400u);
  EXPECT_EQ(report.total_violations, 0u)
      << (report.violations.empty()
              ? std::string()
              : report.violations.front().details.front());
  EXPECT_GT(report.within_contract, 0u);
  // Over-budget attacks must actually break things — otherwise the
  // campaign is shooting blanks.
  EXPECT_GT(report.expected_losses, 0u);
  EXPECT_EQ(report.claimed_tolerance, schedule.failures_tolerated());
}

TEST(CampaignRunner, Example2Solution2SurvivesCampaign) {
  const workload::OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const CampaignReport report =
      run_campaign(schedule, rich_options(200, 7));
  EXPECT_EQ(report.total_violations, 0u);
  EXPECT_GT(report.expected_losses, 0u);
}

TEST(CampaignRunner, ReportIndependentOfThreadCount) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CampaignOptions options = rich_options(300, 99);
  // Give the oracle something to find so violation ordering is exercised
  // too: claim one more than the schedule provides.
  options.oracle.claimed_tolerance = schedule.failures_tolerated() + 1;
  options.spec.max_processor_failures = schedule.failures_tolerated() + 1;

  options.threads = 1;
  const CampaignReport serial = run_campaign(schedule, options);
  for (const unsigned threads : {2u, 4u, 7u}) {
    options.threads = threads;
    const CampaignReport parallel = run_campaign(schedule, options);
    EXPECT_EQ(parallel.scenarios_run, serial.scenarios_run);
    EXPECT_EQ(parallel.within_contract, serial.within_contract);
    EXPECT_EQ(parallel.expected_losses, serial.expected_losses);
    EXPECT_EQ(parallel.total_violations, serial.total_violations);
    ASSERT_EQ(parallel.violations.size(), serial.violations.size());
    for (std::size_t i = 0; i < serial.violations.size(); ++i) {
      EXPECT_EQ(parallel.violations[i].index, serial.violations[i].index);
      EXPECT_EQ(parallel.violations[i].seed, serial.violations[i].seed);
      EXPECT_EQ(parallel.violations[i].details,
                serial.violations[i].details);
    }
    EXPECT_EQ(parallel.coverage.processor_faults,
              serial.coverage.processor_faults);
    EXPECT_EQ(parallel.coverage.crash_time_buckets,
              serial.coverage.crash_time_buckets);
    EXPECT_EQ(parallel.coverage.crash_events, serial.coverage.crash_events);
    // Dedup accounting is part of the determinism contract too: the
    // fingerprint union and the chunk-local replay cache depend on the
    // fixed partition, never on which thread ran a chunk.
    EXPECT_EQ(parallel.unique_scenarios, serial.unique_scenarios);
    EXPECT_EQ(parallel.duplicate_scenarios, serial.duplicate_scenarios);
    EXPECT_EQ(parallel.cached_replays, serial.cached_replays);
    EXPECT_TRUE(parallel.metrics == serial.metrics);
  }
  EXPECT_GT(serial.unique_scenarios, 0u);
  EXPECT_LE(serial.unique_scenarios, serial.scenarios_run);
  EXPECT_EQ(serial.unique_scenarios + serial.duplicate_scenarios,
            serial.scenarios_run);
}

TEST(CampaignRunner, ReplayCacheSkipsDuplicateScenarios) {
  // Dead-at-start-only scenarios collide heavily on a 3-processor
  // architecture: the canonical-fingerprint cache must collapse them
  // without changing any verdict.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CampaignOptions options;
  options.scenarios = 400;
  options.seed = 7;
  options.threads = 1;
  options.spec.max_iterations = 1;
  options.spec.dead_at_start_probability = 1.0;  // dead-at-start only
  const CampaignReport report = run_campaign(schedule, options);
  EXPECT_LT(report.unique_scenarios, report.scenarios_run);
  EXPECT_GT(report.cached_replays, 0u);
  EXPECT_EQ(report.total_violations, 0u);
}

TEST(CampaignRunner, UnderReplicatedClaimIsCaught) {
  // A K=0 base schedule attacked under a claim of K=1: single-processor
  // crashes are within the claimed contract but nothing masks them.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  ASSERT_EQ(schedule.failures_tolerated(), 0);
  CampaignOptions options = rich_options(200, 1);
  options.oracle.claimed_tolerance = 1;
  options.spec.max_processor_failures = 1;
  const CampaignReport report = run_campaign(schedule, options);
  EXPECT_GT(report.total_violations, 0u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_FALSE(report.violations.front().details.empty());
  EXPECT_GT(report.violations.front().plan.event_count(), 0u);
}

TEST(CampaignRunner, ViolationCapKeepsCountingPastTheCap) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  CampaignOptions options = rich_options(300, 3);
  options.oracle.claimed_tolerance = 1;
  options.spec.max_processor_failures = 1;
  options.max_recorded_violations = 2;
  const CampaignReport report = run_campaign(schedule, options);
  EXPECT_GT(report.total_violations, 2u);
  ASSERT_GT(report.violations.size(), 2u);
  // Past the cap only index/seed survive.
  EXPECT_GT(report.violations[0].plan.event_count(), 0u);
  EXPECT_EQ(report.violations[2].plan.event_count(), 0u);
  // Ascending scenario index throughout.
  for (std::size_t i = 1; i < report.violations.size(); ++i) {
    EXPECT_LT(report.violations[i - 1].index, report.violations[i].index);
  }
}

TEST(CampaignRunner, CoverageTouchesEveryProcessor) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CampaignReport report =
      run_campaign(schedule, rich_options(500, 11));
  ASSERT_EQ(report.coverage.processor_faults.size(),
            ex.problem.architecture->processor_count());
  for (const std::size_t hits : report.coverage.processor_faults) {
    EXPECT_GT(hits, 0u);
  }
  ASSERT_EQ(report.coverage.crash_time_buckets.size(), kCrashTimeBuckets);
  std::size_t bucketed = 0;
  for (const std::size_t hits : report.coverage.crash_time_buckets) {
    bucketed += hits;
  }
  EXPECT_EQ(bucketed, report.coverage.crash_events);
  EXPECT_GT(report.coverage.multi_iteration_missions, 0u);
  // The human-readable report renders without blowing up.
  EXPECT_NE(report.to_text(*ex.problem.architecture).find("scenarios"),
            std::string::npos);
}

TEST(CampaignRunner, AgreesWithExhaustiveSubsetInjection) {
  // On a small random problem the campaign's randomized within-contract
  // attacks and the exhaustive failure_subsets sweep must agree: the
  // schedule masks every subset, so the campaign must find nothing.
  workload::RandomProblemParams params;
  params.dag.operations = 12;
  params.dag.width = 3;
  params.arch_kind = workload::ArchKind::kBus;
  params.processors = 4;
  params.failures_to_tolerate = 1;
  params.ccr = 0.5;
  params.seed = 21;
  const workload::OwnedProblem ex = workload::random_problem(params);
  const Schedule schedule = schedule_solution1(ex.problem).value();

  const Simulator simulator(schedule);
  for (const std::vector<ProcessorId>& subset : failure_subsets(4, 1)) {
    EXPECT_TRUE(
        simulator.run(FailureScenario::dead_from_start(subset))
            .all_outputs_produced);
  }

  CampaignOptions options = rich_options(400, 5);
  options.spec.over_budget_fraction = 0.0;  // within contract only
  options.spec.link_failure_probability = 0.0;
  const CampaignReport report = run_campaign(schedule, options);
  EXPECT_EQ(report.scenarios_run, report.within_contract);
  EXPECT_EQ(report.total_violations, 0u);
}

TEST(CampaignRunner, GoldenArtifactsByteIdenticalAcrossThreadCounts) {
  // The strongest form of the determinism contract: not field-by-field
  // equality but byte identity of every serialized artifact the engines
  // emit — the campaign metrics JSON and the certification certificate —
  // across 1, 2, and 8 worker threads (8 oversubscribes most CI runners,
  // exercising arbitrary chunk interleavings). The batched executor, the
  // per-worker scratch arenas, and the sharded replay cache must all be
  // invisible in the output bytes.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CampaignOptions options = rich_options(500, 42);
  options.spec.silence_probability = 0.10;
  options.spec.suspect_probability = 0.10;

  options.threads = 1;
  const std::string golden_metrics =
      run_campaign(schedule, options).metrics.to_json();
  CertifySpec certify_spec;
  certify_spec.threads = 1;
  const std::string golden_certificate =
      certify(schedule, certify_spec).to_json(*ex.problem.architecture);

  for (const unsigned threads : {2u, 8u}) {
    options.threads = threads;
    EXPECT_EQ(run_campaign(schedule, options).metrics.to_json(),
              golden_metrics)
        << "campaign metrics diverge at " << threads << " threads";
    certify_spec.threads = threads;
    EXPECT_EQ(certify(schedule, certify_spec).to_json(
                  *ex.problem.architecture),
              golden_certificate)
        << "certificate diverges at " << threads << " threads";
  }
}

}  // namespace
}  // namespace ftsched::campaign
