// Checked-in campaign counterexamples. Every file under
// tests/campaign/regressions/ is a shrunk reproducer the campaign once
// found; replaying it must keep demonstrating the violation it captured.
// To add one: run campaign_tool with --shrink, paste the shrunk scenario
// into a new .scenario file, and register it below with the schedule and
// claim it attacks.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "campaign/oracle.hpp"
#include "io/scenario_format.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

std::string read_file(const std::string& name) {
  const std::string path =
      std::string(FTSCHED_SOURCE_DIR) + "/tests/campaign/regressions/" + name;
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing reproducer: " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(CampaignRegressions, Example1BaseClaimK1LosesOutputs) {
  // The campaign's proof that a K=0 base schedule cannot honour a K=1
  // claim: the shrunk one-event reproducer kills a single processor and
  // an output is lost. Found by campaign_tool --example1 --base
  // --claim-k 1 --shrink, seed 42.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  ASSERT_EQ(schedule.failures_tolerated(), 0);

  const Expected<MissionPlan> plan = io::read_scenario(
      read_file("example1_base_claim1.scenario"), *ex.problem.architecture);
  ASSERT_TRUE(plan.has_value()) << plan.error().message;
  // The minimized reproducer is a single event.
  EXPECT_EQ(plan->event_count(), 1u);

  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const Verdict verdict =
      oracle.judge(plan.value(), run_mission(schedule, plan.value()));
  EXPECT_TRUE(verdict.within_contract);
  EXPECT_FALSE(verdict.ok());
  EXPECT_TRUE(verdict.outputs_lost);
}

TEST(CampaignRegressions, ReproducerSurvivesSolution1) {
  // The same single fault replayed against the solution-1 schedule for the
  // identical problem is masked — the violation is the base schedule's
  // missing redundancy, not a simulator artefact.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Expected<MissionPlan> plan = io::read_scenario(
      read_file("example1_base_claim1.scenario"), *ex.problem.architecture);
  ASSERT_TRUE(plan.has_value()) << plan.error().message;

  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const Verdict verdict =
      oracle.judge(plan.value(), run_mission(schedule, plan.value()));
  EXPECT_TRUE(verdict.ok()) << verdict.violations.front();
}

}  // namespace
}  // namespace ftsched::campaign
