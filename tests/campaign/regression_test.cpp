// Checked-in campaign counterexamples. Every file under
// tests/campaign/regressions/ is a shrunk reproducer the campaign once
// found; replaying it must keep demonstrating the violation it captured.
// To add one: run campaign_tool with --shrink, paste the shrunk scenario
// into a new .scenario file, and register it below with the schedule and
// claim it attacks.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "campaign/certify.hpp"
#include "campaign/oracle.hpp"
#include "campaign/shrink.hpp"
#include "io/scenario_format.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

std::string read_file(const std::string& name) {
  const std::string path =
      std::string(FTSCHED_SOURCE_DIR) + "/tests/campaign/regressions/" + name;
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing reproducer: " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(CampaignRegressions, Example1BaseClaimK1LosesOutputs) {
  // The campaign's proof that a K=0 base schedule cannot honour a K=1
  // claim: the shrunk one-event reproducer kills a single processor and
  // an output is lost. Found by campaign_tool --example1 --base
  // --claim-k 1 --shrink, seed 42.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  ASSERT_EQ(schedule.failures_tolerated(), 0);

  const Expected<MissionPlan> plan = io::read_scenario(
      read_file("example1_base_claim1.scenario"), *ex.problem.architecture);
  ASSERT_TRUE(plan.has_value()) << plan.error().message;
  // The minimized reproducer is a single event.
  EXPECT_EQ(plan->event_count(), 1u);

  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const Verdict verdict =
      oracle.judge(plan.value(), run_mission(schedule, plan.value()));
  EXPECT_TRUE(verdict.within_contract);
  EXPECT_FALSE(verdict.ok());
  EXPECT_TRUE(verdict.outputs_lost);
}

TEST(CampaignRegressions, CertifyCounterexampleShrinksToCheckedInScenario) {
  // End-to-end certify -> shrink: the exhaustive certifier refutes the
  // base schedule's K=1 claim, its first counterexample routes through
  // ddmin, and the minimized plan is exactly the checked-in reproducer
  // (one dead-at-start processor, no mid-run events).
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();

  CertifySpec spec;
  spec.max_failures = 1;
  spec.threads = 1;
  const CertifyReport report = certify(schedule, spec);
  ASSERT_FALSE(report.certified);
  ASSERT_FALSE(report.counterexamples.empty());

  const Simulator simulator(schedule);
  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const ShrinkResult shrunk = shrink(
      simulator, oracle, counterexample_plan(report.counterexamples.front()));
  EXPECT_FALSE(shrunk.violations.empty());
  EXPECT_EQ(shrunk.final_events, 1u);

  const Expected<MissionPlan> checked_in = io::read_scenario(
      read_file("example1_base_certify_k1.scenario"),
      *ex.problem.architecture);
  ASSERT_TRUE(checked_in.has_value()) << checked_in.error().message;
  EXPECT_EQ(io::write_scenario(shrunk.plan, *ex.problem.architecture),
            io::write_scenario(checked_in.value(), *ex.problem.architecture));

  // And the checked-in scenario keeps demonstrating the violation.
  const Verdict verdict = oracle.judge(
      checked_in.value(), run_mission(schedule, checked_in.value()));
  EXPECT_TRUE(verdict.within_contract);
  EXPECT_TRUE(verdict.outputs_lost);
}

TEST(CampaignRegressions, ReproducerSurvivesSolution1) {
  // The same single fault replayed against the solution-1 schedule for the
  // identical problem is masked — the violation is the base schedule's
  // missing redundancy, not a simulator artefact.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Expected<MissionPlan> plan = io::read_scenario(
      read_file("example1_base_claim1.scenario"), *ex.problem.architecture);
  ASSERT_TRUE(plan.has_value()) << plan.error().message;

  const Oracle oracle(schedule, OracleSpec{.claimed_tolerance = 1});
  const Verdict verdict =
      oracle.judge(plan.value(), run_mission(schedule, plan.value()));
  EXPECT_TRUE(verdict.ok()) << verdict.violations.front();
}

}  // namespace
}  // namespace ftsched::campaign
