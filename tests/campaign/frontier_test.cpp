// The (K, L, S) frontier sweep: the lattice walk must be a pure function
// of (schedule, spec) — byte-identical JSON for any thread count and
// either prune setting — implied refutations must really be dominated by
// an explored one, every certified point must sit under the static GLS
// ceiling, and the paper's named chain constraints must hold at the
// published solutions' design points.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/certify.hpp"
#include "campaign/frontier.hpp"
#include "campaign/oracle.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

using workload::OwnedProblem;

TEST(Frontier, Example1Solution1MapsItsCapabilitySurface) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  const FrontierReport report = frontier_sweep(schedule);
  // Caps resolved from the schedule: K = failures_tolerated() + 1 = 2,
  // L = 1, S = 1 — a 3 x 2 x 2 lattice.
  EXPECT_EQ(report.max_failures, 2);
  EXPECT_EQ(report.max_link_failures, 1);
  EXPECT_EQ(report.max_silences, 1);
  EXPECT_EQ(report.points.size(), 12u);
  EXPECT_EQ(report.points_explored + report.points_implied,
            report.points.size());
  EXPECT_GT(report.points_implied, 0u);

  const auto at = [&](int k, int l, int s) -> const FrontierPoint& {
    for (const FrontierPoint& p : report.points) {
      if (p.max_failures == k && p.max_link_failures == l &&
          p.max_silences == s) {
        return p;
      }
    }
    ADD_FAILURE() << "missing point (" << k << ", " << l << ", " << s << ")";
    return report.points.front();
  };

  // Solution 1 masks its design point K=1 (with silences on top) but not
  // K=2, and its passive comm redundancy dies with the single bus.
  EXPECT_TRUE(at(0, 0, 0).certified);
  EXPECT_TRUE(at(1, 0, 0).certified);
  EXPECT_TRUE(at(1, 0, 1).certified);
  EXPECT_FALSE(at(2, 0, 0).certified);
  EXPECT_FALSE(at(2, 0, 0).implied);
  EXPECT_FALSE(at(0, 1, 0).certified);
  EXPECT_FALSE(at(0, 1, 0).implied);

  // An explored refutation carries evidence: branch counts and a first
  // counterexample that is a genuine fault pattern of the point's budget.
  const FrontierPoint& refuted = at(0, 1, 0);
  EXPECT_GT(refuted.branches, 0u);
  EXPECT_GT(refuted.total_counterexamples, 0u);
  const CertifyBranch& cex = refuted.first_counterexample;
  EXPECT_TRUE(cex.outputs_lost);
  EXPECT_LE(cex.dead_links_at_start.size() + cex.link_crashes.size(), 1u);

  // (1, 1, 0) is dominated by refuted (0, 1, 0): implied, never explored.
  EXPECT_FALSE(at(1, 1, 0).certified);
  EXPECT_TRUE(at(1, 1, 0).implied);
  EXPECT_EQ(at(1, 1, 0).branches, 0u);

  // The maximal surface is the single corner (1, 0, 1).
  ASSERT_EQ(report.surface.size(), 1u);
  EXPECT_EQ(report.surface[0].max_failures, 1);
  EXPECT_EQ(report.surface[0].max_link_failures, 0);
  EXPECT_EQ(report.surface[0].max_silences, 1);

  // Every implied refutation has an explored refuted dominator at or
  // below it — monotonicity is the only thing that may skip a point.
  for (const FrontierPoint& p : report.points) {
    if (!p.implied) continue;
    bool dominated = false;
    for (const FrontierPoint& q : report.points) {
      if (q.certified || q.implied) continue;
      if (q.max_failures <= p.max_failures &&
          q.max_link_failures <= p.max_link_failures &&
          q.max_silences <= p.max_silences) {
        dominated = true;
      }
    }
    EXPECT_TRUE(dominated)
        << "(" << p.max_failures << ", " << p.max_link_failures << ", "
        << p.max_silences << ") implied without an explored dominator";
  }
}

TEST(Frontier, CertifiedPointsStayUnderTheGlsCeiling) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sol1 = schedule_solution1(ex.problem).value();

  // Solution 1: every extio output has 2 replica hosts (K ceiling 1) and
  // the single bus is load-bearing (L ceiling 0).
  const GlsBounds gls = gls_bounds(sol1);
  EXPECT_EQ(gls.k_bound, 1);
  EXPECT_FALSE(gls.l_unbounded);
  EXPECT_EQ(gls.l_bound, 0);

  // The ceiling is sound: no certified lattice point exceeds it.
  const FrontierReport report = frontier_sweep(sol1);
  for (const FrontierPoint& p : report.points) {
    if (!p.certified) continue;
    EXPECT_LE(p.max_failures, gls.k_bound);
    if (!gls.l_unbounded) {
      EXPECT_LE(p.max_link_failures, gls.l_bound);
    }
  }

  // The non-replicated baseline has a K ceiling of 0.
  const Schedule base = schedule_base(ex.problem).value();
  EXPECT_EQ(gls_bounds(base).k_bound, 0);
}

TEST(Frontier, ReportIsByteIdenticalAcrossThreadsAndPrune) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const ArchitectureGraph& arch = *ex.problem.architecture;

  FrontierSpec one;
  one.threads = 1;
  const std::string baseline = frontier_sweep(schedule, one).to_json(arch);

  FrontierSpec two = one;
  two.threads = 2;
  EXPECT_EQ(frontier_sweep(schedule, two).to_json(arch), baseline);

  FrontierSpec eight = one;
  eight.threads = 8;
  EXPECT_EQ(frontier_sweep(schedule, eight).to_json(arch), baseline);

  FrontierSpec unpruned = one;
  unpruned.prune = false;
  EXPECT_EQ(frontier_sweep(schedule, unpruned).to_json(arch), baseline);

  FrontierSpec unpruned_threaded = unpruned;
  unpruned_threaded.threads = 8;
  EXPECT_EQ(frontier_sweep(schedule, unpruned_threaded).to_json(arch),
            baseline);
}

TEST(Frontier, PaperChainConstraintsHoldAtTheDesignPoints) {
  const std::vector<LatencyConstraint> chains = paper_chain_constraints();
  ASSERT_EQ(chains.size(), 2u);

  // Both published solutions certify their design budget with the chains
  // attached; the recorded per-chain envelopes stay under the bounds.
  {
    const OwnedProblem ex = workload::paper_example1();
    const Schedule sol1 = schedule_solution1(ex.problem).value();
    CertifySpec spec;
    spec.latency_constraints = chains;
    const CertifyReport report = certify(sol1, spec);
    EXPECT_TRUE(report.certified)
        << report.to_text(*ex.problem.architecture);
    ASSERT_EQ(report.worst_chain_latency.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_TRUE(time_le(report.worst_chain_latency[i], chains[i].bound));
    }
  }
  {
    const OwnedProblem ex = workload::paper_example2();
    const Schedule sol2 = schedule_solution2(ex.problem).value();
    CertifySpec spec;
    spec.latency_constraints = chains;
    EXPECT_TRUE(certify(sol2, spec).certified);
  }

  // Tightening the spine manufactures a refutation labeled with it — the
  // CI multi-constraint smoke relies on exactly this.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule sol1 = schedule_solution1(ex.problem).value();
  FrontierSpec fspec;
  fspec.latency_constraints = chains;
  fspec.latency_constraints[0].bound = 0.5;
  const FrontierReport frontier = frontier_sweep(sol1, fspec);
  ASSERT_FALSE(frontier.points.empty());
  const FrontierPoint& origin = frontier.points.front();
  EXPECT_FALSE(origin.certified);
  ASSERT_EQ(origin.first_counterexample.violated_constraints.size(), 1u);
  EXPECT_EQ(origin.first_counterexample.violated_constraints[0],
            chains[0].name);
  EXPECT_TRUE(frontier.surface.empty());
}

TEST(Frontier, MalformedChainSpecsThrow) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  FrontierSpec unknown;
  unknown.latency_constraints.push_back(
      LatencyConstraint{"c", "Zeta", "E", 5.0});
  EXPECT_THROW((void)frontier_sweep(schedule, unknown),
               std::invalid_argument);

  FrontierSpec dup;
  dup.latency_constraints.push_back(LatencyConstraint{"c", "A", "E", 5.0});
  dup.latency_constraints.push_back(LatencyConstraint{"c", "I", "O", 9.0});
  EXPECT_THROW((void)frontier_sweep(schedule, dup), std::invalid_argument);

  FrontierSpec inverted;
  inverted.latency_constraints.push_back(
      LatencyConstraint{"c", "A", "E", -2.0});
  EXPECT_THROW((void)frontier_sweep(schedule, inverted),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftsched::campaign
