// The campaign's merged metrics are a pure function of (schedule, options):
// per-worker MetricsSnapshot accumulators merged in chunk-index order, no
// wall-clock content — so any thread count yields byte-identical JSON.
#include <gtest/gtest.h>

#include "campaign/runner.hpp"
#include "json_check.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::campaign {
namespace {

CampaignOptions small_campaign(unsigned threads) {
  CampaignOptions options;
  options.scenarios = 600;
  options.seed = 2024;
  options.threads = threads;
  options.spec.max_iterations = 3;
  options.spec.over_budget_fraction = 0.15;
  options.spec.silence_probability = 0.10;
  options.spec.suspect_probability = 0.10;
  return options;
}

TEST(CampaignMetrics, IdenticalAcrossThreadCounts) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  const CampaignReport one = run_campaign(schedule, small_campaign(1));
  for (const unsigned threads : {2u, 4u, 8u}) {
    const CampaignReport many =
        run_campaign(schedule, small_campaign(threads));
    EXPECT_EQ(one.metrics, many.metrics) << threads << " threads";
    EXPECT_EQ(one.metrics.to_json(), many.metrics.to_json())
        << threads << " threads";
  }
}

TEST(CampaignMetrics, CountersAgreeWithTheReport) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const CampaignReport report = run_campaign(schedule, small_campaign(2));

  const obs::MetricsSnapshot& m = report.metrics;
  EXPECT_EQ(m.counters.at("campaign.scenarios"), report.scenarios_run);
  EXPECT_EQ(m.counters.at("campaign.within_contract"),
            report.within_contract);
  EXPECT_EQ(m.counters.count("campaign.violations") != 0
                ? m.counters.at("campaign.violations")
                : 0u,
            report.total_violations);
  EXPECT_EQ(m.counters.count("campaign.expected_losses") != 0
                ? m.counters.at("campaign.expected_losses")
                : 0u,
            report.expected_losses);
  // Every scenario contributes exactly one plan-size observation.
  EXPECT_EQ(m.histograms.at("campaign.plan_events").total,
            report.scenarios_run);
  EXPECT_TRUE(testing::valid_json(m.to_json())) << m.to_json();
}

TEST(CampaignMetrics, EmptyCampaignYieldsEmptyMetrics) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  CampaignOptions options = small_campaign(1);
  options.scenarios = 0;
  const CampaignReport report = run_campaign(schedule, options);
  EXPECT_TRUE(report.metrics.counters.empty());
  EXPECT_TRUE(testing::valid_json(report.metrics.to_json()));
}

}  // namespace
}  // namespace ftsched::campaign
