#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "json_check.hpp"
#include "obs/json_util.hpp"

namespace ftsched::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket boundaries — the "le" (x <= bound) contract, exactly.

TEST(HistogramBucket, ValueOnBoundaryLandsInThatBucket) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  EXPECT_EQ(histogram_bucket(bounds, 1.0), 0u);
  EXPECT_EQ(histogram_bucket(bounds, 2.0), 1u);
  EXPECT_EQ(histogram_bucket(bounds, 4.0), 2u);
}

TEST(HistogramBucket, JustAboveBoundaryMovesToNextBucket) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  EXPECT_EQ(histogram_bucket(bounds, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(histogram_bucket(bounds, std::nextafter(4.0, 8.0)), 3u);
}

TEST(HistogramBucket, BelowFirstBoundIsBucketZero) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(histogram_bucket(bounds, 0.5), 0u);
  EXPECT_EQ(histogram_bucket(bounds, -100.0), 0u);
  EXPECT_EQ(histogram_bucket(bounds, -std::numeric_limits<double>::infinity()),
            0u);
}

TEST(HistogramBucket, AboveLastBoundIsOverflow) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(histogram_bucket(bounds, 3.0), 2u);
  EXPECT_EQ(histogram_bucket(bounds, std::numeric_limits<double>::infinity()),
            2u);
}

TEST(HistogramBucket, NanLandsInOverflow) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(histogram_bucket(bounds, std::nan("")), 2u);
}

TEST(HistogramBucket, EmptyBoundsMeansSingleOverflowBucket) {
  EXPECT_EQ(histogram_bucket({}, 42.0), 0u);
}

TEST(Histogram, CountsTotalsAndSums) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(1.0);   // boundary -> bucket 0
  h.observe(5.0);
  h.observe(100.0); // overflow
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
}

// ---------------------------------------------------------------------------
// Snapshot accumulation and merge.

TEST(MetricsSnapshot, MergeAddsCountersAndBuckets) {
  const std::vector<double> bounds = {1.0, 2.0};
  MetricsSnapshot a;
  a.add_counter("runs", 3);
  a.observe("lat", bounds, 0.5);
  MetricsSnapshot b;
  b.add_counter("runs", 4);
  b.add_counter("only_in_b");
  b.observe("lat", bounds, 1.5);
  b.observe("lat", bounds, 99.0);

  a.merge(b);
  EXPECT_EQ(a.counters.at("runs"), 7u);
  EXPECT_EQ(a.counters.at("only_in_b"), 1u);
  const HistogramSnapshot& lat = a.histograms.at("lat");
  EXPECT_EQ(lat.counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(lat.total, 3u);
  EXPECT_DOUBLE_EQ(lat.sum, 101.0);
}

TEST(MetricsSnapshot, MergeKeepsMaxGauge) {
  MetricsSnapshot a;
  a.set_gauge("depth", 3.0);
  MetricsSnapshot b;
  b.set_gauge("depth", 7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauges.at("depth"), 7.0);
  b.merge(a);  // merging the smaller value back does not lower it
  EXPECT_DOUBLE_EQ(b.gauges.at("depth"), 7.0);
}

TEST(MetricsSnapshot, MergeIsOrderIndependent) {
  const std::vector<double> bounds = {2.0};
  MetricsSnapshot parts[3];
  parts[0].add_counter("n", 1);
  parts[0].observe("h", bounds, 1.0);
  parts[1].add_counter("n", 10);
  parts[1].observe("h", bounds, 3.0);
  parts[2].set_gauge("g", 5.0);

  MetricsSnapshot forward;
  for (const MetricsSnapshot& p : parts) forward.merge(p);
  MetricsSnapshot backward;
  backward.merge(parts[2]);
  backward.merge(parts[1]);
  backward.merge(parts[0]);
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(MetricsSnapshot, ObserveReusesFirstBounds) {
  MetricsSnapshot s;
  s.observe("h", {1.0, 2.0}, 0.5);
  // Later bounds are ignored; the observation still lands via the original.
  s.observe("h", {100.0}, 1.5);
  EXPECT_EQ(s.histograms.at("h").bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.histograms.at("h").total, 2u);
}

TEST(MetricsSnapshot, JsonIsValidAndInsertionOrderIndependent) {
  MetricsSnapshot a;
  a.add_counter("zeta");
  a.add_counter("alpha", 2);
  a.set_gauge("mid", 1.5);
  a.observe("lat", {1.0}, 0.5);

  MetricsSnapshot b;  // same content, reversed insertion order
  b.observe("lat", {1.0}, 0.5);
  b.set_gauge("mid", 1.5);
  b.add_counter("alpha", 2);
  b.add_counter("zeta");

  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(testing::valid_json(a.to_json())) << a.to_json();
  // Lexicographic key order makes the export diffable.
  const std::string json = a.to_json();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

TEST(MetricsSnapshot, EmptySnapshotRendersValidJson) {
  EXPECT_TRUE(testing::valid_json(MetricsSnapshot{}.to_json()));
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("hits");
  c1.add(2);
  Counter& c2 = registry.counter("hits");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 2u);

  Histogram& h1 = registry.histogram("lat", {1.0, 2.0});
  Histogram& h2 = registry.histogram("lat", {99.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, SnapshotAndResetRoundTrip) {
  MetricsRegistry registry;
  registry.counter("hits").add(5);
  registry.gauge("depth").set(2.5);
  registry.histogram("lat", {1.0}).observe(0.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("hits"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth"), 2.5);
  EXPECT_EQ(snap.histograms.at("lat").total, 1u);
  EXPECT_TRUE(testing::valid_json(snap.to_json()));

  registry.reset();
  EXPECT_TRUE(registry.snapshot().counters.empty());
  EXPECT_TRUE(registry.snapshot().histograms.empty());
}

// ---------------------------------------------------------------------------
// JSON helpers (shared by every exporter).

TEST(JsonUtil, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonUtil, NumbersRenderIntegralWithoutFraction) {
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-2.0), "-2");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
}

}  // namespace
}  // namespace ftsched::obs
