// Profiling spans: the enable gate, thread-grouped draining, and the
// span.<name> duration histograms. The profiler and metrics registry are
// process-wide singletons, so every test starts from a clean slate and
// leaves the profiler disabled.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.hpp"

namespace ftsched::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::global().enable(false);
    Profiler::global().clear();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    Profiler::global().enable(false);
    Profiler::global().clear();
    MetricsRegistry::global().reset();
  }
};

TEST_F(SpanTest, DisabledProfilerRecordsNothing) {
  {
    ScopedSpan span("test.disabled");
  }
  FTSCHED_SPAN("test.disabled_macro");
  EXPECT_TRUE(Profiler::global().drain().empty());
  EXPECT_TRUE(
      MetricsRegistry::global().snapshot().histograms.empty());
}

TEST_F(SpanTest, EnabledSpanIsRecordedWithOrderedTimestamps) {
  Profiler::global().enable(true);
  {
    ScopedSpan span("test.enabled");
  }
  Profiler::global().enable(false);

  const std::vector<SpanRecord> spans = Profiler::global().drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.enabled");
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
  EXPECT_GE(spans[0].duration_ns(), 0);
}

TEST_F(SpanTest, SpanDurationFeedsGlobalHistogram) {
  Profiler::global().enable(true);
  {
    ScopedSpan span("test.hist");
  }
  {
    ScopedSpan span("test.hist");
  }
  Profiler::global().enable(false);

  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  ASSERT_TRUE(snap.histograms.contains("span.test.hist"));
  EXPECT_EQ(snap.histograms.at("span.test.hist").total, 2u);
}

TEST_F(SpanTest, DrainClearsTheBuffers) {
  Profiler::global().enable(true);
  {
    ScopedSpan span("test.drained");
  }
  Profiler::global().enable(false);
  EXPECT_EQ(Profiler::global().drain().size(), 1u);
  EXPECT_TRUE(Profiler::global().drain().empty());
}

TEST_F(SpanTest, SpansGroupByThreadWithDenseIndices) {
  Profiler::global().enable(true);
  {
    ScopedSpan span("test.main_thread");
  }
  std::thread worker([] {
    ScopedSpan span("test.worker_thread");
  });
  worker.join();
  Profiler::global().enable(false);

  // Buffers survive the worker's exit; drain sees both threads, grouped.
  const std::vector<SpanRecord> spans = Profiler::global().drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].thread, spans[1].thread);
  EXPECT_LE(spans[0].thread, 1u);
  EXPECT_LE(spans[1].thread, 1u);
  EXPECT_LE(spans[0].thread, spans[1].thread);
}

#if FTSCHED_OBS_ENABLED
TEST_F(SpanTest, MacroRecordsWhenEnabled) {
  Profiler::global().enable(true);
  {
    FTSCHED_SPAN("test.macro");
  }
  Profiler::global().enable(false);
  const std::vector<SpanRecord> spans = Profiler::global().drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.macro");
}
#else
TEST_F(SpanTest, MacroIsCompiledOutWhenObsIsOff) {
  Profiler::global().enable(true);
  {
    FTSCHED_SPAN("test.macro");
  }
  Profiler::global().enable(false);
  EXPECT_TRUE(Profiler::global().drain().empty());
}
#endif

TEST_F(SpanTest, EnableFlagReadsBack) {
  EXPECT_FALSE(Profiler::global().enabled());
  Profiler::global().enable(true);
  EXPECT_TRUE(Profiler::global().enabled());
  Profiler::global().enable(false);
  EXPECT_FALSE(Profiler::global().enabled());
}

}  // namespace
}  // namespace ftsched::obs
