// Minimal recursive-descent JSON well-formedness checker for tests. The
// exporters only ever *render* JSON, so the tests need a validator that
// rejects malformed output without dragging in a parsing library.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace ftsched::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  [[nodiscard]] bool valid() {
    pos_ = 0;
    const bool ok = value();
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    return true;
  }

  [[nodiscard]] bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }

  [[nodiscard]] bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  [[nodiscard]] bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] inline bool valid_json(std::string_view text) {
  return JsonChecker(text).valid();
}

}  // namespace ftsched::testing
