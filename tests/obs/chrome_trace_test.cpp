// Chrome trace-event export: golden files for the deterministic exporters
// (schedule Gantt, simulated iteration), structural JSON validity for all
// three, and determinism under repeated export.
//
// To regenerate a golden after an intentional format change, run
// trace_tool with -o pointing at the file:
//   ./build/examples/trace_tool gantt --example1 --solution1
//       -o tests/obs/golden/example1_solution1_gantt.trace.json
//   ./build/examples/trace_tool sim --example1 --solution1 --fail P1@2
//       -o tests/obs/golden/example1_solution1_fail_p1_at_2.trace.json
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::obs {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(FTSCHED_SOURCE_DIR) + "/tests/obs/golden/" + name;
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing golden file: " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(ChromeTraceSchedule, MatchesGoldenByteForByte) {
  // The export has no wall-clock dependence: timestamps are the paper's
  // abstract dates scaled by kTraceUsPerTimeUnit. Any diff here is a real
  // format or scheduler change.
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  EXPECT_EQ(chrome_trace_from_schedule(schedule),
            read_golden("example1_solution1_gantt.trace.json"));
}

TEST(ChromeTraceSchedule, ExportIsDeterministic) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  EXPECT_EQ(chrome_trace_from_schedule(schedule),
            chrome_trace_from_schedule(schedule));
}

TEST(ChromeTraceSchedule, IsValidJsonWithExpectedEnvelope) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const std::string json = chrome_trace_from_schedule(schedule);
  EXPECT_TRUE(testing::valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // One row per processor (P1..P3) and one for the bus.
  EXPECT_NE(json.find("\"name\": \"P1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"bus\""), std::string::npos);
}

TEST(ChromeTraceSim, FaultyIterationMatchesGolden) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  FailureScenario scenario;
  scenario.events.push_back(
      FailureEvent{ex.problem.architecture->find_processor("P1"), 2.0});
  const Simulator simulator(schedule);
  const IterationResult iteration = simulator.run(scenario);
  ASSERT_TRUE(iteration.all_outputs_produced);

  const std::string json = chrome_trace_from_sim_trace(
      iteration.trace, *ex.problem.algorithm, *ex.problem.architecture);
  EXPECT_TRUE(testing::valid_json(json)) << json;
  EXPECT_EQ(json, read_golden("example1_solution1_fail_p1_at_2.trace.json"));
}

TEST(ChromeTraceSim, FaultFreeIterationIsValidJson) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const IterationResult iteration = simulator.run(FailureScenario{});
  const std::string json = chrome_trace_from_sim_trace(
      iteration.trace, *ex.problem.algorithm, *ex.problem.architecture);
  EXPECT_TRUE(testing::valid_json(json)) << json;
  // No failures injected: no failure instants in the timeline.
  EXPECT_EQ(json.find("\"cat\": \"failure\""), std::string::npos);
}

TEST(ChromeTraceSpans, SyntheticSpansRenderRebasedAndPerThread) {
  // Hand-built records make the span exporter deterministic too: rebasing
  // to the earliest start turns absolute clock readings into offsets.
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{"alpha", 0, 5'000'000, 7'500'000});
  spans.push_back(SpanRecord{"beta", 1, 6'000'000, 6'250'000 + 750'000});
  const std::string json = chrome_trace_from_spans(spans);
  EXPECT_TRUE(testing::valid_json(json)) << json;
  // alpha starts at the rebased origin; durations are ns / 1000.
  EXPECT_NE(json.find("\"ts\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2500"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"thread 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"thread 1\""), std::string::npos);
  EXPECT_EQ(chrome_trace_from_spans(spans), json);
}

TEST(ChromeTraceSpans, EmptySpanListIsValidJson) {
  const std::string json = chrome_trace_from_spans({});
  EXPECT_TRUE(testing::valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceTime, ScalesPaperUnitsToMicroseconds) {
  EXPECT_EQ(to_trace_us(0.0), 0);
  EXPECT_EQ(to_trace_us(1.0), 1000);
  EXPECT_EQ(to_trace_us(9.4), 9400);
  EXPECT_EQ(to_trace_us(0.0005), 1);  // rounds, never truncates
}

}  // namespace
}  // namespace ftsched::obs
