#include "arch/topologies.hpp"

#include <gtest/gtest.h>

namespace ftsched {
namespace {

TEST(Topologies, SingleBus) {
  const ArchitectureGraph arch = topologies::single_bus(4);
  EXPECT_EQ(arch.processor_count(), 4u);
  EXPECT_EQ(arch.link_count(), 1u);
  EXPECT_EQ(arch.link(LinkId{0}).kind, LinkKind::kBus);
  EXPECT_TRUE(arch.is_connected());
}

TEST(Topologies, FullyConnected) {
  const ArchitectureGraph arch = topologies::fully_connected(4);
  EXPECT_EQ(arch.link_count(), 6u);  // n(n-1)/2
  for (const Link& link : arch.links()) {
    EXPECT_EQ(link.kind, LinkKind::kPointToPoint);
  }
  EXPECT_TRUE(arch.is_connected());
  // Names follow the paper's Li.j convention.
  EXPECT_TRUE(arch.find_link("L1.2").valid());
  EXPECT_TRUE(arch.find_link("L3.4").valid());
}

TEST(Topologies, Chain) {
  const ArchitectureGraph arch = topologies::chain(5);
  EXPECT_EQ(arch.link_count(), 4u);
  EXPECT_TRUE(arch.adjacent(arch.find_processor("P2"),
                            arch.find_processor("P3")));
  EXPECT_FALSE(arch.adjacent(arch.find_processor("P1"),
                             arch.find_processor("P3")));
}

TEST(Topologies, Ring) {
  const ArchitectureGraph arch = topologies::ring(5);
  EXPECT_EQ(arch.link_count(), 5u);
  EXPECT_TRUE(arch.adjacent(arch.find_processor("P1"),
                            arch.find_processor("P5")));
}

TEST(Topologies, Star) {
  const ArchitectureGraph arch = topologies::star(5);
  EXPECT_EQ(arch.link_count(), 4u);
  for (std::size_t i = 2; i <= 5; ++i) {
    std::string name = "P";
    name += std::to_string(i);
    EXPECT_TRUE(arch.adjacent(arch.find_processor("P1"),
                              arch.find_processor(name)));
  }
}

TEST(Topologies, RejectTooSmall) {
  EXPECT_THROW(topologies::single_bus(1), std::invalid_argument);
  EXPECT_THROW(topologies::ring(2), std::invalid_argument);
  EXPECT_THROW(topologies::chain(1), std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
