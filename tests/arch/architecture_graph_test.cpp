#include "arch/architecture_graph.hpp"

#include <gtest/gtest.h>

namespace ftsched {
namespace {

TEST(ArchitectureGraph, PointToPointConstruction) {
  ArchitectureGraph arch;
  const ProcessorId p1 = arch.add_processor("P1");
  const ProcessorId p2 = arch.add_processor("P2");
  const LinkId link = arch.add_link("L1.2", p1, p2);

  EXPECT_EQ(arch.processor_count(), 2u);
  EXPECT_EQ(arch.link_count(), 1u);
  EXPECT_EQ(arch.link(link).kind, LinkKind::kPointToPoint);
  EXPECT_TRUE(arch.link(link).connects(p1));
  EXPECT_TRUE(arch.link(link).connects(p2));
  EXPECT_TRUE(arch.adjacent(p1, p2));
  EXPECT_TRUE(arch.is_connected());
  EXPECT_TRUE(arch.check().empty());
}

TEST(ArchitectureGraph, BusConstruction) {
  ArchitectureGraph arch;
  const ProcessorId p1 = arch.add_processor("P1");
  const ProcessorId p2 = arch.add_processor("P2");
  const ProcessorId p3 = arch.add_processor("P3");
  const LinkId bus = arch.add_bus("bus", {p3, p1, p2, p1});  // dup + order

  EXPECT_EQ(arch.link(bus).kind, LinkKind::kBus);
  EXPECT_EQ(arch.link(bus).endpoints.size(), 3u);  // deduplicated
  EXPECT_EQ(arch.link(bus).endpoints.front(), p1);  // sorted
  EXPECT_TRUE(arch.adjacent(p1, p3));
}

TEST(ArchitectureGraph, Lookup) {
  ArchitectureGraph arch;
  arch.add_processor("P1");
  arch.add_processor("P2");
  arch.add_link("wire", arch.find_processor("P1"), arch.find_processor("P2"));
  EXPECT_TRUE(arch.find_processor("P2").valid());
  EXPECT_FALSE(arch.find_processor("P9").valid());
  EXPECT_TRUE(arch.find_link("wire").valid());
  EXPECT_FALSE(arch.find_link("none").valid());
}

TEST(ArchitectureGraph, RejectsBadInput) {
  ArchitectureGraph arch;
  const ProcessorId p1 = arch.add_processor("P1");
  EXPECT_THROW(arch.add_processor("P1"), std::invalid_argument);
  EXPECT_THROW(arch.add_link("self", p1, p1), std::invalid_argument);
  EXPECT_THROW(arch.add_bus("tiny", {p1}), std::invalid_argument);
  EXPECT_THROW(arch.add_link("bad", p1, ProcessorId{9}),
               std::invalid_argument);
}

TEST(ArchitectureGraph, DisconnectedDetected) {
  ArchitectureGraph arch;
  const ProcessorId p1 = arch.add_processor("P1");
  const ProcessorId p2 = arch.add_processor("P2");
  arch.add_processor("P3");  // island
  arch.add_link("L1.2", p1, p2);
  EXPECT_FALSE(arch.is_connected());
  EXPECT_FALSE(arch.check().empty());
}

TEST(ArchitectureGraph, LinksOfProcessor) {
  ArchitectureGraph arch;
  const ProcessorId p1 = arch.add_processor("P1");
  const ProcessorId p2 = arch.add_processor("P2");
  const ProcessorId p3 = arch.add_processor("P3");
  const LinkId a = arch.add_link("a", p1, p2);
  const LinkId b = arch.add_link("b", p1, p3);
  EXPECT_EQ(arch.links_of(p1), (std::vector<LinkId>{a, b}));
  EXPECT_EQ(arch.links_of(p3), (std::vector<LinkId>{b}));
}

}  // namespace
}  // namespace ftsched
