#include "arch/characteristics.hpp"

#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(ExecTable, DefaultsToDisallowed) {
  const auto graph = workload::paper_algorithm();
  const ArchitectureGraph arch = topologies::single_bus(3);
  const ExecTable table(*graph, arch);
  EXPECT_FALSE(table.allowed(OperationId{0}, ProcessorId{0}));
  EXPECT_TRUE(is_infinite(table.min_duration(OperationId{0})));
}

TEST(ExecTable, SetAndQuery) {
  const auto graph = workload::paper_algorithm();
  const ArchitectureGraph arch = topologies::single_bus(3);
  ExecTable table(*graph, arch);
  const OperationId a = graph->find_operation("A");
  table.set(a, ProcessorId{0}, 2.0);
  table.set(a, ProcessorId{1}, 3.0);
  EXPECT_DOUBLE_EQ(table.duration(a, ProcessorId{0}), 2.0);
  EXPECT_TRUE(table.allowed(a, ProcessorId{1}));
  EXPECT_FALSE(table.allowed(a, ProcessorId{2}));
  EXPECT_DOUBLE_EQ(table.min_duration(a), 2.0);
  EXPECT_EQ(table.allowed_processors(a),
            (std::vector<ProcessorId>{ProcessorId{0}, ProcessorId{1}}));
}

TEST(ExecTable, RejectsNonPositiveDurations) {
  const auto graph = workload::paper_algorithm();
  const ArchitectureGraph arch = topologies::single_bus(3);
  ExecTable table(*graph, arch);
  EXPECT_THROW(table.set(OperationId{0}, ProcessorId{0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(table.set(OperationId{0}, ProcessorId{0}, -1.0),
               std::invalid_argument);
  EXPECT_NO_THROW(table.set(OperationId{0}, ProcessorId{0}, kInfinite));
}

TEST(ExecTable, RedundancyCheck) {
  const auto graph = workload::paper_algorithm();
  const ArchitectureGraph arch = topologies::single_bus(3);
  ExecTable table(*graph, arch);
  for (const Operation& op : graph->operations()) {
    table.set(op.id, ProcessorId{0}, 1.0);
  }
  // Each op runs on one processor: fine for K=0, infeasible for K=1.
  EXPECT_TRUE(table.check(1).empty());
  EXPECT_EQ(table.check(2).size(), graph->operation_count());
}

TEST(CommTable, RouteDuration) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const RoutingTable routing(*ex.problem.architecture);
  const AlgorithmGraph& graph = *ex.problem.algorithm;
  const DependencyId i_a = graph.dependency(DependencyId{0}).id;
  const Route& route =
      routing.route(ex.problem.architecture->find_processor("P1"),
                    ex.problem.architecture->find_processor("P2"));
  EXPECT_DOUBLE_EQ(ex.problem.comm->route_duration(i_a, route), 1.25);
  // Intra-processor route costs nothing.
  const Route& self =
      routing.route(ex.problem.architecture->find_processor("P1"),
                    ex.problem.architecture->find_processor("P1"));
  EXPECT_DOUBLE_EQ(ex.problem.comm->route_duration(i_a, self), 0.0);
}

TEST(CommTable, CheckReportsMissingDurations) {
  const auto graph = workload::paper_algorithm();
  const ArchitectureGraph arch = topologies::single_bus(3);
  CommTable table(*graph, arch);
  EXPECT_EQ(table.check().size(), graph->dependency_count());
  for (const Dependency& dep : graph->dependencies()) {
    table.set_uniform(dep.id, 0.5);
  }
  EXPECT_TRUE(table.check().empty());
}

TEST(Problem, CheckAggregatesIssues) {
  const workload::OwnedProblem ex = workload::paper_example1();
  EXPECT_TRUE(ex.problem.check().empty());

  Problem bad = ex.problem;
  bad.failures_to_tolerate = 2;  // I and O allow only 2 processors
  const auto issues = bad.check();
  EXPECT_FALSE(issues.empty());
}

TEST(Problem, DeadlineDefaultsUnconstrained) {
  const workload::OwnedProblem ex = workload::paper_example1();
  EXPECT_TRUE(is_infinite(ex.problem.deadline));
  EXPECT_EQ(ex.problem.replication_factor(), 2);
}

}  // namespace
}  // namespace ftsched
