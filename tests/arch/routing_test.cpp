#include "arch/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/topologies.hpp"

namespace ftsched {
namespace {

TEST(Routing, ChainRoutesThroughIntermediates) {
  // Figure 8: P1 - P2 - P3; a P1<->P3 transfer relays through P2.
  const ArchitectureGraph arch = topologies::chain(3);
  const RoutingTable routing(arch);
  const ProcessorId p1 = arch.find_processor("P1");
  const ProcessorId p3 = arch.find_processor("P3");

  const Route& route = routing.route(p1, p3);
  EXPECT_EQ(route.hop_count(), 2u);
  ASSERT_EQ(route.hops.size(), 3u);
  EXPECT_EQ(route.hops[0], p1);
  EXPECT_EQ(route.hops[1], arch.find_processor("P2"));
  EXPECT_EQ(route.hops[2], p3);
  EXPECT_EQ(routing.diameter(), 2u);
}

TEST(Routing, SelfRouteIsEmpty) {
  const ArchitectureGraph arch = topologies::chain(2);
  const RoutingTable routing(arch);
  const Route& route = routing.route(arch.find_processor("P1"),
                                     arch.find_processor("P1"));
  EXPECT_TRUE(route.links.empty());
  ASSERT_EQ(route.hops.size(), 1u);
}

TEST(Routing, BusIsSingleHopForEveryPair) {
  const ArchitectureGraph arch = topologies::single_bus(5);
  const RoutingTable routing(arch);
  for (const Processor& a : arch.processors()) {
    for (const Processor& b : arch.processors()) {
      if (a.id == b.id) continue;
      EXPECT_EQ(routing.route(a.id, b.id).hop_count(), 1u);
    }
  }
  EXPECT_EQ(routing.diameter(), 1u);
}

TEST(Routing, FullyConnectedUsesDirectLinks) {
  const ArchitectureGraph arch = topologies::fully_connected(4);
  const RoutingTable routing(arch);
  for (const Processor& a : arch.processors()) {
    for (const Processor& b : arch.processors()) {
      if (a.id == b.id) continue;
      const Route& route = routing.route(a.id, b.id);
      ASSERT_EQ(route.hop_count(), 1u);
      EXPECT_TRUE(arch.link(route.links.front()).connects(a.id));
      EXPECT_TRUE(arch.link(route.links.front()).connects(b.id));
    }
  }
}

TEST(Routing, RingPicksMinHopDeterministically) {
  const ArchitectureGraph arch = topologies::ring(5);
  const RoutingTable routing(arch);
  const ProcessorId p1 = arch.find_processor("P1");
  const ProcessorId p3 = arch.find_processor("P3");
  // P1->P3: two hops either way round; BFS from P1 reaches P3 via P2
  // (links expanded in ascending id order).
  const Route& route = routing.route(p1, p3);
  EXPECT_EQ(route.hop_count(), 2u);
  EXPECT_EQ(route.hops[1], arch.find_processor("P2"));
}

TEST(Routing, SymmetricHopCounts) {
  const ArchitectureGraph arch = topologies::star(6);
  const RoutingTable routing(arch);
  for (const Processor& a : arch.processors()) {
    for (const Processor& b : arch.processors()) {
      EXPECT_EQ(routing.route(a.id, b.id).hop_count(),
                routing.route(b.id, a.id).hop_count());
    }
  }
  EXPECT_EQ(routing.diameter(), 2u);  // leaf -> hub -> leaf
}

TEST(Routing, DisjointRoutesOnFullMesh) {
  // A full mesh of n processors offers the direct link plus n-2 two-hop
  // detours, all pairwise link-disjoint.
  const ArchitectureGraph arch = topologies::fully_connected(4);
  const RoutingTable routing(arch);
  const auto routes = routing.disjoint_routes(
      arch.find_processor("P1"), arch.find_processor("P2"), 5);
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_EQ(routes[0].hop_count(), 1u);  // direct, shortest first
  EXPECT_EQ(routes[1].hop_count(), 2u);
  EXPECT_EQ(routes[2].hop_count(), 2u);
  std::vector<LinkId> seen;
  for (const Route& route : routes) {
    for (LinkId link : route.links) {
      EXPECT_TRUE(std::find(seen.begin(), seen.end(), link) == seen.end());
      seen.push_back(link);
    }
  }
}

TEST(Routing, RouteAvoidingRespectsBans) {
  const ArchitectureGraph arch = topologies::ring(4);
  const RoutingTable routing(arch);
  const ProcessorId p1 = arch.find_processor("P1");
  const ProcessorId p3 = arch.find_processor("P3");

  // Ban the clockwise first hop: the route must go the other way round.
  std::vector<bool> banned(arch.link_count(), false);
  banned[arch.find_link("L1.2").index()] = true;
  const auto detour = routing.route_avoiding(p1, p3, banned);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->hop_count(), 2u);
  for (LinkId link : detour->links) {
    EXPECT_NE(link, arch.find_link("L1.2"));
  }

  // Ban a relay processor: same effect.
  std::vector<bool> none(arch.link_count(), false);
  std::vector<bool> banned_procs(arch.processor_count(), false);
  banned_procs[arch.find_processor("P2").index()] = true;
  const auto around = routing.route_avoiding(p1, p3, none, &banned_procs);
  ASSERT_TRUE(around.has_value());
  for (ProcessorId hop : around->hops) {
    EXPECT_NE(hop, arch.find_processor("P2"));
  }

  // Banning everything disconnects the pair.
  std::vector<bool> all(arch.link_count(), true);
  EXPECT_FALSE(routing.route_avoiding(p1, p3, all).has_value());
}

TEST(Routing, RejectsDisconnectedArchitecture) {
  ArchitectureGraph arch;
  arch.add_processor("P1");
  arch.add_processor("P2");
  EXPECT_THROW(RoutingTable{arch}, std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
