// Fork-equivalence: the snapshotable Branch API (begin / advance_until /
// inject / fork / finish) must be indistinguishable from Simulator::run —
// bit-identical traces, response times, and detections — no matter how
// the same scenario is sliced into prefix + injections. The certifier and
// the transient analyzer both rest on this.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

void expect_identical(const IterationResult& a, const IterationResult& b) {
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t i = 0; i < a.trace.events().size(); ++i) {
    EXPECT_TRUE(a.trace.events()[i] == b.trace.events()[i])
        << "trace diverges at event " << i;
  }
  EXPECT_EQ(a.all_outputs_produced, b.all_outputs_produced);
  EXPECT_EQ(a.response_time, b.response_time);  // exact, not epsilon
  EXPECT_EQ(a.detected_failures, b.detected_failures);
}

/// The mid-run events of `scenario` — crashes, link deaths, and silent
/// windows (keyed by their opening edge) — injected into a branch seeded
/// with everything else; `advance` interleaves advance_until up to each
/// injection instant (false = inject all upfront against the unexecuted
/// prologue).
IterationResult replay_forked(const Simulator& simulator,
                              const FailureScenario& scenario, bool advance) {
  FailureScenario base = scenario;
  base.events.clear();
  base.link_events.clear();
  base.silent_windows.clear();
  Simulator::Branch branch = simulator.begin(base);

  struct Injection {
    Time time = 0;
    int cls = 0;  // 0 = crash, 1 = link death, 2 = silent window
    std::size_t index = 0;
  };
  std::vector<Injection> order;
  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    order.push_back({scenario.events[i].time, 0, i});
  }
  for (std::size_t i = 0; i < scenario.link_events.size(); ++i) {
    order.push_back({scenario.link_events[i].time, 1, i});
  }
  for (std::size_t i = 0; i < scenario.silent_windows.size(); ++i) {
    order.push_back({scenario.silent_windows[i].from, 2, i});
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Injection& a, const Injection& b) {
                     return time_lt(a.time, b.time);
                   });
  for (const Injection& injection : order) {
    if (advance) simulator.advance_until(branch, injection.time);
    if (injection.cls == 1) {
      simulator.inject(branch, scenario.link_events[injection.index]);
    } else if (injection.cls == 2) {
      simulator.inject(branch, scenario.silent_windows[injection.index]);
    } else {
      simulator.inject(branch, scenario.events[injection.index]);
    }
  }
  return simulator.finish(std::move(branch));
}

std::vector<FailureScenario> interesting_scenarios(const Schedule& schedule) {
  const Time makespan = schedule.makespan();
  std::vector<FailureScenario> scenarios;
  scenarios.push_back({});
  scenarios.push_back(FailureScenario::dead_from_start({ProcessorId{1}}));
  scenarios.push_back(FailureScenario::crash(ProcessorId{0}, makespan / 3));
  scenarios.push_back(FailureScenario::crash(ProcessorId{1}, makespan / 2));
  {
    // Double crash at distinct instants plus a silent window.
    FailureScenario scenario;
    scenario.events.push_back(FailureEvent{ProcessorId{0}, makespan / 4});
    scenario.events.push_back(
        FailureEvent{ProcessorId{2}, makespan * 2 / 3});
    scenario.silent_windows.push_back(
        SilentWindow{ProcessorId{1}, makespan / 5, makespan / 2});
    scenarios.push_back(std::move(scenario));
  }
  {
    // Simultaneous crashes: same instant, two victims.
    FailureScenario scenario;
    scenario.events.push_back(FailureEvent{ProcessorId{0}, makespan / 2});
    scenario.events.push_back(FailureEvent{ProcessorId{2}, makespan / 2});
    scenarios.push_back(std::move(scenario));
  }
  {
    // A link death mid-run alongside a processor crash.
    FailureScenario scenario;
    scenario.events.push_back(FailureEvent{ProcessorId{1}, makespan / 2});
    scenario.link_events.push_back(
        LinkFailureEvent{LinkId{0}, makespan / 4});
    scenarios.push_back(std::move(scenario));
  }
  {
    // A silent window with no other fault: blocked sends resume at the
    // closing edge, watch chains may fire meanwhile.
    FailureScenario scenario;
    scenario.silent_windows.push_back(
        SilentWindow{ProcessorId{0}, makespan / 6, makespan / 2});
    scenarios.push_back(std::move(scenario));
  }
  {
    // Same-instant crash and window opening on distinct processors (the
    // certifier explores these as one canonical same-instant pair).
    FailureScenario scenario;
    scenario.events.push_back(FailureEvent{ProcessorId{2}, makespan / 3});
    scenario.silent_windows.push_back(
        SilentWindow{ProcessorId{0}, makespan / 3, makespan});
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

void check_schedule(const Schedule& schedule, SimOptions options = {}) {
  const Simulator simulator(schedule, options);
  for (const FailureScenario& scenario : interesting_scenarios(schedule)) {
    const IterationResult scratch = simulator.run(scenario);
    // Mode 1: the whole scenario seeds the branch.
    expect_identical(simulator.finish(simulator.begin(scenario)), scratch);
    // Mode 2: mid-run events injected upfront, prologue unexecuted.
    expect_identical(replay_forked(simulator, scenario, false), scratch);
    // Mode 3: prefix executed incrementally up to each injection.
    expect_identical(replay_forked(simulator, scenario, true), scratch);
  }
}

TEST(ForkEquivalence, PaperExample1Solution1) {
  const OwnedProblem ex = workload::paper_example1();
  check_schedule(schedule_solution1(ex.problem).value());
}

TEST(ForkEquivalence, PaperExample1Base) {
  const OwnedProblem ex = workload::paper_example1();
  check_schedule(schedule_base(ex.problem).value());
}

TEST(ForkEquivalence, PaperExample2Solution2) {
  const OwnedProblem ex = workload::paper_example2();
  check_schedule(schedule_solution2(ex.problem).value());
}

TEST(ForkEquivalence, RandomProblems) {
  for (const std::uint64_t seed : {7u, 19u, 40u}) {
    workload::RandomProblemParams params;
    params.dag.operations = 14;
    params.processors = 4;
    params.failures_to_tolerate = 1;
    params.seed = seed;
    const OwnedProblem ex = workload::random_problem(params);
    for (const HeuristicKind kind :
         {HeuristicKind::kSolution1, HeuristicKind::kSolution2}) {
      const auto result = schedule(ex.problem, kind);
      ASSERT_TRUE(result.has_value()) << result.error().message;
      SCOPED_TRACE(to_string(kind) + " seed " + std::to_string(seed));
      check_schedule(result.value());
    }
  }
}

TEST(ForkEquivalence, CalendarSchedulerMatchesScratchRuns) {
  // The whole begin/advance/inject/fork/finish surface over the calendar
  // event queue: forking deep-copies the calendar's slot arrays and free
  // list, and every sliced replay must still match the from-scratch run.
  const OwnedProblem ex1 = workload::paper_example1();
  check_schedule(schedule_solution1(ex1.problem).value(),
                 {EventSchedulerKind::kCalendar});
  const OwnedProblem ex2 = workload::paper_example2();
  check_schedule(schedule_solution2(ex2.problem).value(),
                 {EventSchedulerKind::kCalendar});
}

TEST(ForkEquivalence, SchedulersAgreeAcrossForkModes) {
  // Heap and calendar simulators over the same schedule: a branch forked
  // and finished under one queue implementation equals a from-scratch run
  // under the other — queue choice is invisible end to end.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator heap(schedule, {EventSchedulerKind::kBinaryHeap});
  const Simulator calendar(schedule, {EventSchedulerKind::kCalendar});
  for (const FailureScenario& scenario : interesting_scenarios(schedule)) {
    expect_identical(calendar.finish(calendar.begin(scenario)),
                     heap.run(scenario));
    expect_identical(replay_forked(calendar, scenario, true),
                     heap.run(scenario));
  }
}

TEST(ForkEquivalence, ForksAreIndependent) {
  // Two branches forked from one advanced cursor evolve independently:
  // finishing one (or forking it again) must not disturb the other, and
  // each must equal its from-scratch run.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const Time mid = schedule.makespan() / 2;

  Simulator::Branch cursor = simulator.begin();
  simulator.advance_until(cursor, mid);

  Simulator::Branch a = cursor.fork();
  Simulator::Branch b = cursor.fork();
  simulator.inject(a, FailureEvent{ProcessorId{0}, mid});
  simulator.inject(b, FailureEvent{ProcessorId{2}, mid});

  // Finish a twice via an extra fork before touching b at all.
  const IterationResult a1 = simulator.finish(a.fork());
  const IterationResult a2 = simulator.finish(std::move(a));
  expect_identical(a1, a2);
  expect_identical(a1,
                   simulator.run(FailureScenario::crash(ProcessorId{0}, mid)));
  expect_identical(simulator.finish(std::move(b)),
                   simulator.run(FailureScenario::crash(ProcessorId{2}, mid)));
  // The cursor itself is still a valid failure-free branch.
  expect_identical(simulator.finish(std::move(cursor)), simulator.run());
}

TEST(ForkEquivalence, InjectIntoExecutedPrefixThrows) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  Simulator::Branch branch = simulator.begin();
  simulator.advance_until(branch, schedule.makespan());
  EXPECT_THROW(simulator.inject(branch, FailureEvent{ProcessorId{0}, 0}),
               std::invalid_argument);
}

TEST(ForkEquivalence, InjectSilentWindowGuards) {
  // The window's opening edge carries the same executed_until guard as a
  // crash instant, and degenerate (non-positive-length) windows are
  // rejected outright.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const Time makespan = schedule.makespan();
  Simulator::Branch branch = simulator.begin();
  simulator.advance_until(branch, makespan / 2);
  EXPECT_THROW(
      simulator.inject(branch, SilentWindow{ProcessorId{0}, 0, makespan}),
      std::invalid_argument);
  EXPECT_THROW(
      simulator.inject(branch,
                       SilentWindow{ProcessorId{0}, makespan, makespan}),
      std::invalid_argument);
  // A well-formed future window is accepted and the branch still runs.
  simulator.inject(branch,
                   SilentWindow{ProcessorId{0}, makespan * 0.75, makespan});
  const IterationResult result = simulator.finish(std::move(branch));
  EXPECT_FALSE(result.trace.events().empty());
}

}  // namespace
}  // namespace ftsched
