// The pluggable event queue's core contract: the binary heap and the
// calendar queue serve the exact same pop sequence for any push/pop
// interleaving, because events are totally ordered by (time, kind, seq)
// and both implementations respect that order. Also pins the pieces the
// simulator leans on: same-instant kind precedence (deliveries before
// completions before failures before deadlines), FIFO among full ties,
// kAuto's density-based resolution, copyability (Branch::fork deep-copies
// a paused queue), and reconfiguration without storage loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace ftsched::sim_detail {
namespace {

Event make_event(Time time, EventKind kind, std::uint32_t seq,
                 std::uint32_t index = 0) {
  Event event;
  event.time = time;
  event.seq = seq;
  event.index = index;
  event.kind = kind;
  return event;
}

bool same_event(const Event& a, const Event& b) {
  return a.time == b.time && a.seq == b.seq && a.index == b.index &&
         a.kind == b.kind;
}

/// Drains both queues in lockstep, asserting identical pop sequences.
void expect_lockstep_drain(EventQueue& heap, EventQueue& calendar) {
  ASSERT_EQ(heap.size(), calendar.size());
  std::size_t step = 0;
  while (!heap.empty()) {
    const Event& h = heap.top();
    const Event& c = calendar.top();
    ASSERT_TRUE(same_event(h, c))
        << "pop " << step << ": heap (t=" << h.time << " kind="
        << static_cast<int>(h.kind) << " seq=" << h.seq << ") vs calendar (t="
        << c.time << " kind=" << static_cast<int>(c.kind) << " seq=" << c.seq
        << ")";
    heap.pop();
    calendar.pop();
    ++step;
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(EventQueue, AutoResolvesByDensity) {
  EventQueue queue;
  // Sparse plan: few events — the heap wins.
  queue.configure(EventSchedulerKind::kAuto, 100.0, 8);
  EXPECT_EQ(queue.scheduler(), EventSchedulerKind::kBinaryHeap);
  // Dense plan: hundreds of events over a positive horizon — calendar.
  queue.configure(EventSchedulerKind::kAuto, 100.0, 500);
  EXPECT_EQ(queue.scheduler(), EventSchedulerKind::kCalendar);
  // Explicit kinds are always honored.
  queue.configure(EventSchedulerKind::kBinaryHeap, 100.0, 500);
  EXPECT_EQ(queue.scheduler(), EventSchedulerKind::kBinaryHeap);
  queue.configure(EventSchedulerKind::kCalendar, 100.0, 2);
  EXPECT_EQ(queue.scheduler(), EventSchedulerKind::kCalendar);
}

TEST(EventQueue, KindPrecedenceAtOneInstant) {
  // Pushed in scrambled order; popped in kind order (the same-instant
  // processing order the simulator's semantics depend on).
  const EventKind want[] = {EventKind::kHopDone, EventKind::kOpDone,
                            EventKind::kFailure, EventKind::kLinkFailure,
                            EventKind::kDeadline};
  for (const EventSchedulerKind kind :
       {EventSchedulerKind::kBinaryHeap, EventSchedulerKind::kCalendar}) {
    EventQueue queue;
    queue.configure(kind, 10.0, 8);
    std::uint32_t seq = 0;
    queue.push(make_event(5.0, EventKind::kDeadline, seq++));
    queue.push(make_event(5.0, EventKind::kFailure, seq++));
    queue.push(make_event(5.0, EventKind::kHopDone, seq++));
    queue.push(make_event(5.0, EventKind::kLinkFailure, seq++));
    queue.push(make_event(5.0, EventKind::kOpDone, seq++));
    for (const EventKind expected : want) {
      ASSERT_FALSE(queue.empty());
      EXPECT_EQ(queue.top().kind, expected);
      queue.pop();
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueue, FullTiesPopInPushOrder) {
  // Same time, same kind: FIFO by seq — push order is the tie-break, so
  // no implementation can reorder equal-priority events.
  for (const EventSchedulerKind kind :
       {EventSchedulerKind::kBinaryHeap, EventSchedulerKind::kCalendar}) {
    EventQueue queue;
    queue.configure(kind, 10.0, 16);
    for (std::uint32_t i = 0; i < 12; ++i) {
      queue.push(make_event(3.0, EventKind::kHopDone, i, 100 + i));
    }
    for (std::uint32_t i = 0; i < 12; ++i) {
      ASSERT_EQ(queue.top().seq, i);
      EXPECT_EQ(queue.top().index, 100 + i);
      queue.pop();
    }
  }
}

TEST(EventQueue, HeapAndCalendarAgreeOnRandomWorkloads) {
  // Property test: random interleavings of pushes (clustered times, many
  // exact ties, boundary times 0 and the horizon, a few out-of-horizon
  // stragglers) and pops. Both implementations must serve the identical
  // sequence at every step.
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 40; ++round) {
    const Time horizon = 1.0 + static_cast<Time>(round);
    EventQueue heap;
    EventQueue calendar;
    heap.configure(EventSchedulerKind::kBinaryHeap, horizon, 64);
    calendar.configure(EventSchedulerKind::kCalendar, horizon, 64);

    std::uint32_t seq = 0;
    const int ops = 300;
    for (int op = 0; op < ops; ++op) {
      const bool push = heap.empty() || (rng() % 3) != 0;
      if (push) {
        // Quantized times force frequent exact ties; 10% land at or past
        // the horizon (last-bucket overflow path), some exactly at 0.
        Time t = static_cast<Time>(rng() % 32) * (horizon / 16.0);
        const EventKind kind = static_cast<EventKind>(rng() % 5);
        const Event event = make_event(t, kind, seq, seq);
        ++seq;
        heap.push(event);
        calendar.push(event);
      } else {
        ASSERT_TRUE(same_event(heap.top(), calendar.top()))
            << "round " << round << " op " << op;
        heap.pop();
        calendar.pop();
      }
      ASSERT_EQ(heap.size(), calendar.size());
    }
    expect_lockstep_drain(heap, calendar);
  }
}

TEST(EventQueue, CopyPreservesThePendingSet) {
  // Branch::fork copies SimState by value, event queue included: the copy
  // must drain identically to the original, and draining one must not
  // disturb the other.
  for (const EventSchedulerKind kind :
       {EventSchedulerKind::kBinaryHeap, EventSchedulerKind::kCalendar}) {
    EventQueue original;
    original.configure(kind, 20.0, 64);
    std::mt19937_64 rng(7);
    for (std::uint32_t i = 0; i < 50; ++i) {
      original.push(make_event(static_cast<Time>(rng() % 40) * 0.5,
                               static_cast<EventKind>(rng() % 5), i, i));
    }
    // Pop a few so the calendar's free list and cached minimum are live.
    for (int i = 0; i < 10; ++i) original.pop();

    EventQueue copy = original;
    std::vector<Event> from_original;
    std::vector<Event> from_copy;
    while (!copy.empty()) {
      from_copy.push_back(copy.top());
      copy.pop();
    }
    while (!original.empty()) {
      from_original.push_back(original.top());
      original.pop();
    }
    ASSERT_EQ(from_original.size(), from_copy.size());
    for (std::size_t i = 0; i < from_original.size(); ++i) {
      EXPECT_TRUE(same_event(from_original[i], from_copy[i])) << "pop " << i;
    }
  }
}

TEST(EventQueue, ReconfigureClearsPendingEvents) {
  // configure() re-arms for a fresh run: leftovers from the previous run
  // must be gone whichever implementation either run used.
  for (const EventSchedulerKind before :
       {EventSchedulerKind::kBinaryHeap, EventSchedulerKind::kCalendar}) {
    for (const EventSchedulerKind after :
         {EventSchedulerKind::kBinaryHeap, EventSchedulerKind::kCalendar}) {
      EventQueue queue;
      queue.configure(before, 10.0, 32);
      for (std::uint32_t i = 0; i < 20; ++i) {
        queue.push(make_event(1.0 + i, EventKind::kOpDone, i));
      }
      queue.pop();
      queue.configure(after, 5.0, 32);
      EXPECT_TRUE(queue.empty());
      EXPECT_EQ(queue.size(), 0u);
      queue.push(make_event(2.0, EventKind::kDeadline, 0));
      ASSERT_EQ(queue.size(), 1u);
      EXPECT_EQ(queue.top().kind, EventKind::kDeadline);
      queue.pop();
      EXPECT_TRUE(queue.empty());
    }
  }
}

TEST(EventQueue, DegenerateHorizonFallsBackToHeap) {
  // A calendar cannot bucket a zero-width horizon; configure() falls back
  // to the heap rather than divide by zero.
  EventQueue queue;
  queue.configure(EventSchedulerKind::kCalendar, 0.0, 128);
  EXPECT_EQ(queue.scheduler(), EventSchedulerKind::kBinaryHeap);
}

TEST(EventQueue, CalendarHandlesOutOfHorizonTimes) {
  // Far-future (or infinite) event times land in the last bucket — a
  // linear-scan degradation, never an ordering break.
  EventQueue queue;
  queue.configure(EventSchedulerKind::kCalendar, 4.0, 128);
  ASSERT_EQ(queue.scheduler(), EventSchedulerKind::kCalendar);
  queue.push(make_event(kInfinite, EventKind::kDeadline, 0));
  queue.push(make_event(3.0, EventKind::kOpDone, 1));
  queue.push(make_event(0.0, EventKind::kHopDone, 2));
  queue.push(make_event(1e12, EventKind::kOpDone, 3));
  ASSERT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.top().seq, 2u);
  queue.pop();
  EXPECT_EQ(queue.top().seq, 1u);
  queue.pop();
  EXPECT_EQ(queue.top().seq, 3u);
  queue.pop();
  EXPECT_EQ(queue.top().kind, EventKind::kDeadline);
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace ftsched::sim_detail
