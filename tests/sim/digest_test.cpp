// Pins the Simulator::branch_digest contract the certifier's memo table
// rests on (see the digest_state comment in sim/simulator.cpp):
//  * construction-invariance — the digest is a function of the paused
//    state, not of how it was built: scheduler kind (heap vs calendar),
//    fork() copies, and upfront-vs-interleaved injection all agree;
//  * soundness on a large corpus — two states with equal digests have
//    identical futures (post-pause trace, verdict, response), i.e. ~0
//    collisions over 10k+ distinct paused states;
//  * relabeling — with automorphism classes supplied, crashing one
//    spectator digests equal to crashing another in its class (flagged
//    `relabeled`), while distinct non-spectator victims stay distinct.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/slack.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

std::uint64_t time_bits(Time t) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(Time));
  std::memcpy(&bits, &t, sizeof(bits));
  return bits;
}

/// FNV-1a over the behaviour a paused state still owes: every trace event
/// at or after the pause instant, plus the finished verdict. Equal digests
/// must imply equal signatures — that IS the memo table's soundness.
struct FutureSignature {
  std::uint64_t hash = 1469598103934665603ULL;
  void absorb(std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (x >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  friend bool operator==(const FutureSignature&,
                         const FutureSignature&) = default;
};

FutureSignature future_signature(const IterationResult& result, Time pause) {
  FutureSignature sig;
  for (const TraceEvent& event : result.trace.events()) {
    // advance_until is epsilon-strict: everything executed before the
    // pause lies strictly below pause - epsilon, so time_ge selects
    // exactly the events the paused state still owed.
    if (!time_ge(event.time, pause)) continue;
    sig.absorb(static_cast<std::uint64_t>(event.kind));
    sig.absorb(time_bits(event.time));
    sig.absorb(static_cast<std::uint64_t>(event.proc.value()));
    sig.absorb(static_cast<std::uint64_t>(event.peer.value()));
    sig.absorb(static_cast<std::uint64_t>(event.op.value()));
    sig.absorb(static_cast<std::uint64_t>(event.rank));
    sig.absorb(static_cast<std::uint64_t>(event.dep.value()));
    sig.absorb(static_cast<std::uint64_t>(event.link.value()));
  }
  sig.absorb(result.all_outputs_produced ? 1 : 0);
  sig.absorb(time_bits(result.response_time));
  sig.absorb(time_bits(result.silence_deferral));
  for (const ProcessorId proc : result.detected_failures) {
    sig.absorb(static_cast<std::uint64_t>(proc.value()));
  }
  return sig;
}

/// Seeds a branch with the scenario's start state, injects every mid-run
/// fault upfront, and pauses at `pause`.
Simulator::Branch paused_branch(const Simulator& simulator,
                                const FailureScenario& scenario, Time pause) {
  FailureScenario base = scenario;
  base.events.clear();
  base.link_events.clear();
  base.silent_windows.clear();
  Simulator::Branch branch = simulator.begin(base);
  for (const FailureEvent& event : scenario.events) {
    simulator.inject(branch, event);
  }
  for (const LinkFailureEvent& event : scenario.link_events) {
    simulator.inject(branch, event);
  }
  for (const SilentWindow& window : scenario.silent_windows) {
    simulator.inject(branch, window);
  }
  simulator.advance_until(branch, pause);
  return branch;
}

TEST(StateDigest, StableAcrossSchedulerKindsAndForkConstruction) {
  const OwnedProblem ex = workload::paper_example1();
  for (const Schedule& schedule : {schedule_solution1(ex.problem).value(),
                                   schedule_solution2(ex.problem).value()}) {
    const Simulator heap(schedule, {EventSchedulerKind::kBinaryHeap});
    const Simulator calendar(schedule, {EventSchedulerKind::kCalendar});
    const Time makespan = schedule.makespan();

    FailureScenario scenario;
    scenario.events.push_back(FailureEvent{ProcessorId{1}, makespan / 4});
    scenario.silent_windows.push_back(
        SilentWindow{ProcessorId{0}, makespan / 3, makespan * 2 / 3});

    for (int step = 1; step <= 6; ++step) {
      const Time pause = makespan * step / 6;
      const Simulator::Branch a = paused_branch(heap, scenario, pause);
      const StateDigest reference = heap.branch_digest(a);
      EXPECT_FALSE(reference.relabeled);

      // Same state under the calendar queue.
      const Simulator::Branch b = paused_branch(calendar, scenario, pause);
      EXPECT_EQ(calendar.branch_digest(b), reference) << "pause " << pause;

      // Interleaved construction: advance to each fault, inject, go on.
      Simulator::Branch c = heap.begin();
      heap.advance_until(c, scenario.events[0].time);
      heap.inject(c, scenario.events[0]);
      if (time_lt(scenario.events[0].time, pause)) {
        heap.advance_until(c, scenario.silent_windows[0].from);
        heap.inject(c, scenario.silent_windows[0]);
        heap.advance_until(c, pause);
        EXPECT_EQ(heap.branch_digest(c), reference) << "pause " << pause;
      }

      // fork() is a deep copy: digest identical, and hashing one copy
      // must not disturb the other.
      const Simulator::Branch d = a.fork();
      EXPECT_EQ(heap.branch_digest(d), reference) << "pause " << pause;
      EXPECT_EQ(heap.branch_digest(a), reference) << "pause " << pause;
    }
  }
}

TEST(StateDigest, AllowanceOptionOnlyAffectsSilentWindowStates) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const Time makespan = schedule.makespan();

  // No silent window anywhere: the allowance term has nothing to hash and
  // both option settings agree.
  FailureScenario crash = FailureScenario::crash(ProcessorId{1}, makespan / 3);
  const Simulator::Branch a = paused_branch(simulator, crash, makespan / 2);
  DigestOptions with;
  DigestOptions without;
  without.with_allowance = false;
  EXPECT_EQ(simulator.branch_digest(a, with),
            simulator.branch_digest(a, without));

  // A live window that already deferred state is visible to the allowance
  // term: the two settings may differ, but each stays self-consistent
  // across construction.
  FailureScenario silent;
  silent.silent_windows.push_back(
      SilentWindow{ProcessorId{0}, makespan / 6, makespan});
  const Simulator::Branch b = paused_branch(simulator, silent, makespan / 2);
  const Simulator::Branch c = paused_branch(simulator, silent, makespan / 2);
  EXPECT_EQ(simulator.branch_digest(b, with), simulator.branch_digest(c, with));
  EXPECT_EQ(simulator.branch_digest(b, without),
            simulator.branch_digest(c, without));
}

TEST(StateDigest, NoCollisionsOnTenThousandStateCorpus) {
  // Every (schedule, scenario, pause) tuple below yields one paused state;
  // states sharing a digest must share their whole remaining behaviour.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, FutureSignature>>
      seen;  // digest.hi -> (digest.lo, future)
  std::size_t corpus = 0;
  std::size_t collisions = 0;

  const auto visit = [&](const Simulator& simulator,
                         const FailureScenario& scenario, Time pause) {
    Simulator::Branch branch = paused_branch(simulator, scenario, pause);
    const StateDigest digest = simulator.branch_digest(branch);
    const FutureSignature future =
        future_signature(simulator.finish(std::move(branch)), pause);
    ++corpus;
    const auto [it, inserted] =
        seen.try_emplace(digest.hi, digest.lo, future);
    if (inserted) return;
    // hi matched: a full match must agree on the future; a half-match
    // (hi equal, lo different) is a distinct digest, not a collision.
    if (it->second.first == digest.lo && !(it->second.second == future)) {
      ++collisions;
    }
  };

  const auto sweep_schedule = [&](const Schedule& schedule) {
    const Simulator simulator(schedule);
    const Time makespan = schedule.makespan();
    const std::size_t procs =
        schedule.problem().architecture->processor_count();
    const auto pauses = [&](Time after, const auto& fn) {
      for (int j = 1; j <= 9; ++j) {
        fn(after + (makespan - after) * j / 10);
      }
    };
    for (std::size_t v = 0; v < procs; ++v) {
      for (int i = 1; i <= 80; ++i) {
        const Time at = makespan * i / 81;
        pauses(at, [&](Time pause) {
          visit(simulator,
                FailureScenario::crash(ProcessorId{static_cast<std::int32_t>(v)}, at), pause);
        });
      }
      for (int i = 1; i <= 30; ++i) {
        const Time from = makespan * i / 31;
        FailureScenario scenario;
        scenario.silent_windows.push_back(SilentWindow{
            ProcessorId{static_cast<std::int32_t>(v)}, from, from + makespan / 4});
        pauses(from, [&](Time pause) { visit(simulator, scenario, pause); });
      }
      // A crash and a window on distinct processors.
      for (int i = 1; i <= 15; ++i) {
        const Time at = makespan * i / 16;
        FailureScenario scenario;
        scenario.events.push_back(
            FailureEvent{ProcessorId{static_cast<std::int32_t>(v)}, at});
        scenario.silent_windows.push_back(SilentWindow{
            ProcessorId{static_cast<std::int32_t>((v + 1) % procs)}, at, at + makespan / 3});
        pauses(at, [&](Time pause) { visit(simulator, scenario, pause); });
      }
    }
    pauses(0, [&](Time pause) { visit(simulator, {}, pause); });
  };

  const OwnedProblem ex1 = workload::paper_example1();
  sweep_schedule(schedule_base(ex1.problem).value());
  sweep_schedule(schedule_solution1(ex1.problem).value());
  sweep_schedule(schedule_solution2(ex1.problem).value());

  EXPECT_GE(corpus, 10000u);
  EXPECT_EQ(collisions, 0u);
  // The corpus is genuinely diverse — the digest separates far more than
  // a handful of states (distinct pause instants with no event in between
  // legitimately coincide, so full distinctness is not expected).
  EXPECT_GT(seen.size(), corpus / 20);
}

TEST(StateDigest, VictimRelabelingWithinAutomorphismClass) {
  // Seed 2 on a 6-processor bus leaves three perfect spectators — found by
  // campaign::automorphism_classes, asserted below so a heuristic change
  // that erodes the class fails loudly instead of vacuously passing.
  workload::RandomProblemParams params;
  params.dag.operations = 4;
  params.processors = 6;
  params.failures_to_tolerate = 1;
  params.seed = 2;
  const OwnedProblem ex = workload::random_problem(params);
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const auto classes = campaign::automorphism_classes(schedule);
  ASSERT_EQ(classes.size(), 1u);
  ASSERT_GE(classes[0].size(), 2u);

  const Simulator simulator(schedule);
  const Time makespan = schedule.makespan();
  const Time at = makespan / 3;
  const Time pause = makespan / 2;
  DigestOptions canon;
  canon.proc_classes = &classes;

  const auto digest_crash = [&](std::int32_t victim,
                                const DigestOptions& opt) {
    const Simulator::Branch branch = paused_branch(
        simulator, FailureScenario::crash(ProcessorId{victim}, at), pause);
    return simulator.branch_digest(branch, opt);
  };

  // All spectator crashes collapse to one canonical digest, and at least
  // one of them needed a genuine (non-identity) relabeling to get there.
  const StateDigest first = digest_crash(classes[0][0], canon);
  bool any_relabeled = first.relabeled;
  for (std::size_t m = 1; m < classes[0].size(); ++m) {
    const StateDigest other = digest_crash(classes[0][m], canon);
    EXPECT_EQ(other, first) << "class member " << classes[0][m];
    any_relabeled = any_relabeled || other.relabeled;
  }
  EXPECT_TRUE(any_relabeled);

  // Without the classes the same crashes stay distinct.
  EXPECT_FALSE(digest_crash(classes[0][0], {}) ==
               digest_crash(classes[0][1], {}));

  // A non-spectator victim is outside every class: distinct even with the
  // classes supplied.
  std::vector<bool> spectator(6, false);
  for (const std::uint32_t p : classes[0]) spectator[p] = true;
  for (unsigned victim = 0; victim < 6; ++victim) {
    if (spectator[victim]) continue;
    EXPECT_FALSE(digest_crash(victim, canon) == first) << victim;
  }
}

}  // namespace
}  // namespace ftsched
