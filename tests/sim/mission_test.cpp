// Mission runner and intermittent fail-silent episodes (§6.1 item 3).
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(Mission, FailureFreeMissionIsSteady) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const MissionResult mission = run_mission(schedule, 4, {});
  EXPECT_TRUE(mission.every_iteration_served());
  for (const MissionIteration& it : mission.iterations) {
    EXPECT_DOUBLE_EQ(it.response_time,
                     mission.iterations.front().response_time);
    EXPECT_EQ(it.timeouts, 0u);
    EXPECT_TRUE(it.known_failed.empty());
    EXPECT_TRUE(it.suspected.empty());
  }
}

TEST(Mission, CrashDetectedThenSettled) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");
  const MissionResult mission = run_mission(
      schedule, 4, {MissionFailure{1, FailureEvent{p2, 3.2}}});
  SCOPED_TRACE(mission.to_text(*ex.problem.architecture));
  EXPECT_TRUE(mission.every_iteration_served());
  // Iteration 1 is the transient one; iterations 2-3 know the failure.
  EXPECT_GT(mission.iterations[1].timeouts, 0u);
  EXPECT_TRUE(mission.iterations[1].known_failed.empty());
  EXPECT_EQ(mission.iterations[2].known_failed,
            std::vector<ProcessorId>{p2});
  EXPECT_EQ(mission.iterations[2].timeouts, 0u);
  EXPECT_EQ(mission.iterations[3].known_failed,
            std::vector<ProcessorId>{p2});
  // Subsequent iterations are no slower than the transient one.
  EXPECT_LE(mission.iterations[2].response_time,
            mission.iterations[1].response_time);
}

TEST(Mission, TwoStaggeredCrashesWithKTwo) {
  // 4-processor bus version of the paper's algorithm with K = 2: allow I/O
  // on three processors so the redundancy suffices.
  OwnedProblem ex = workload::paper_example1();
  auto arch = std::make_unique<ArchitectureGraph>();
  std::vector<ProcessorId> procs;
  for (int i = 1; i <= 4; ++i) {
    std::string name = "P";
    name += std::to_string(i);
    procs.push_back(arch->add_processor(name));
  }
  arch->add_bus("bus", procs);
  auto algorithm = workload::paper_algorithm();
  auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
  auto comm = std::make_unique<CommTable>(*algorithm, *arch);
  for (const Operation& op : algorithm->operations()) {
    exec->set_uniform(op.id, 1.0);
  }
  for (const Dependency& dep : algorithm->dependencies()) {
    comm->set_uniform(dep.id, 0.4);
  }
  OwnedProblem owned =
      workload::assemble(std::move(algorithm), std::move(arch),
                         std::move(exec), std::move(comm), 2);
  const Schedule schedule = schedule_solution1(owned.problem).value();

  const MissionResult mission = run_mission(
      schedule, 5,
      {MissionFailure{1, FailureEvent{ProcessorId{0}, 2.0}},
       MissionFailure{3, FailureEvent{ProcessorId{2}, 1.0}}});
  SCOPED_TRACE(mission.to_text(*owned.problem.architecture));
  EXPECT_TRUE(mission.every_iteration_served());
  EXPECT_EQ(mission.iterations[4].known_failed.size(), 2u);
}

TEST(FailSilent, EpisodeIsRiddenOutAndForgiven) {
  // P2 (the main of most of example 1's operations) goes silent for a
  // stretch of the iteration: the backups detect the silence and cover for
  // it, outputs still appear, and once P2 resumes sending, the rejoin logic
  // clears its flags — nobody considers it failed afterwards.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  FailureScenario scenario;
  scenario.silent_windows.push_back(SilentWindow{p2, 4.0, 7.0});
  const IterationResult result = simulator.run(scenario);
  SCOPED_TRACE(result.trace.to_text(*ex.problem.algorithm,
                                    *ex.problem.architecture));
  EXPECT_TRUE(result.all_outputs_produced);
  EXPECT_GT(result.trace.count(TraceEvent::Kind::kTimeout), 0u);
  // Nobody still flags P2 itself: its resumed sends rehabilitated it. (A
  // flag on another processor may linger until the next iteration's
  // traffic — covered by the mission test below.)
  for (ProcessorId accused : result.detected_failures) {
    EXPECT_NE(accused, p2);
  }

  // Across a mission the episode may leave a *sticky* suspicion on a pure
  // backup processor (it transmits nothing in nominal iterations, so the
  // bus-scanning rejoin never gets evidence of life — an honest limitation
  // of the §6.1 scheme). The property that matters: the suspicion is
  // benign — every iteration keeps serving, nothing is ever promoted to
  // "known failed", and a later REAL failure is still masked.
  const MissionResult mission = run_mission(
      schedule, 4, {MissionFailure{2, FailureEvent{p2, 3.2}}},
      {MissionSilence{0, SilentWindow{p2, 4.0, 7.0}}});
  SCOPED_TRACE(mission.to_text(*ex.problem.architecture));
  EXPECT_TRUE(mission.every_iteration_served());
  for (const MissionIteration& it : mission.iterations) {
    EXPECT_LE(it.suspected.size(), 1u);
  }
  EXPECT_EQ(mission.iterations[3].known_failed,
            std::vector<ProcessorId>{p2});
}

TEST(FailSilent, SuspectedProcessorIsRehabilitatedNextIteration) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  // Everyone wrongly believes P2 dead at iteration start; P2 is healthy.
  FailureScenario scenario;
  scenario.suspected_at_start = {p2};
  const IterationResult result = simulator.run(scenario);
  SCOPED_TRACE(result.trace.to_text(*ex.problem.algorithm,
                                    *ex.problem.architecture));
  EXPECT_TRUE(result.all_outputs_produced);
  // P2's own sends rehabilitate it.
  EXPECT_TRUE(result.detected_failures.empty());
}

TEST(Mission, RejectsNonPositiveIterationCount) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  EXPECT_THROW(run_mission(schedule, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
