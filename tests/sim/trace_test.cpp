#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/failure.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(Trace, QueriesOverHandBuiltEvents) {
  Trace trace;
  trace.record({TraceEvent::Kind::kOpStart, 1.0, ProcessorId{0}, {},
                OperationId{0}, 0, {}, {}});
  trace.record({TraceEvent::Kind::kOpEnd, 2.0, ProcessorId{0}, {},
                OperationId{0}, 0, {}, {}});
  trace.record({TraceEvent::Kind::kOpEnd, 3.0, ProcessorId{1}, {},
                OperationId{0}, 1, {}, {}});
  trace.record({TraceEvent::Kind::kTimeout, 2.5, ProcessorId{1},
                ProcessorId{0}, {}, 0, DependencyId{0}, {}});

  EXPECT_EQ(trace.count(TraceEvent::Kind::kOpEnd), 2u);
  EXPECT_EQ(trace.count(TraceEvent::Kind::kTimeout), 1u);
  EXPECT_EQ(trace.count(TraceEvent::Kind::kDrop), 0u);
  EXPECT_DOUBLE_EQ(trace.op_end(OperationId{0}, ProcessorId{0}), 2.0);
  EXPECT_DOUBLE_EQ(trace.op_end(OperationId{0}, ProcessorId{1}), 3.0);
  EXPECT_TRUE(is_infinite(trace.op_end(OperationId{0}, ProcessorId{2})));
  EXPECT_DOUBLE_EQ(trace.earliest_op_end(OperationId{0}), 2.0);
  EXPECT_TRUE(is_infinite(trace.earliest_op_end(OperationId{1})));
  EXPECT_DOUBLE_EQ(trace.end_time(), 3.0);
}

TEST(Trace, TextListingNamesEntities) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const IterationResult result = simulator.run(FailureScenario::crash(
      ex.problem.architecture->find_processor("P2"), 3.2));
  const std::string text = result.trace.to_text(
      *ex.problem.algorithm, *ex.problem.architecture);
  EXPECT_NE(text.find("op-start"), std::string::npos);
  EXPECT_NE(text.find("transfer-end"), std::string::npos);
  EXPECT_NE(text.find("failure"), std::string::npos);
  EXPECT_NE(text.find("timeout"), std::string::npos);
  EXPECT_NE(text.find("election"), std::string::npos);
  EXPECT_NE(text.find("on P2"), std::string::npos);
  EXPECT_NE(text.find("via bus"), std::string::npos);
}

TEST(TraceEventKind, Names) {
  EXPECT_EQ(to_string(TraceEvent::Kind::kOpStart), "op-start");
  EXPECT_EQ(to_string(TraceEvent::Kind::kOpEnd), "op-end");
  EXPECT_EQ(to_string(TraceEvent::Kind::kTransferStart), "transfer-start");
  EXPECT_EQ(to_string(TraceEvent::Kind::kTransferEnd), "transfer-end");
  EXPECT_EQ(to_string(TraceEvent::Kind::kTimeout), "timeout");
  EXPECT_EQ(to_string(TraceEvent::Kind::kElection), "election");
  EXPECT_EQ(to_string(TraceEvent::Kind::kFailure), "failure");
  EXPECT_EQ(to_string(TraceEvent::Kind::kDrop), "drop");
}

TEST(FailureSubsets, EnumeratesBySize) {
  const auto subsets = failure_subsets(4, 2);
  // C(4,1) + C(4,2) = 4 + 6.
  EXPECT_EQ(subsets.size(), 10u);
  for (const auto& subset : subsets) {
    EXPECT_GE(subset.size(), 1u);
    EXPECT_LE(subset.size(), 2u);
    // Strictly ascending ids, no duplicates.
    for (std::size_t i = 1; i < subset.size(); ++i) {
      EXPECT_LT(subset[i - 1], subset[i]);
    }
  }
  EXPECT_EQ(failure_subsets(3, 3).size(), 7u);  // 2^3 - 1
  EXPECT_TRUE(failure_subsets(3, 0).empty());
}

TEST(FailureScenario, Helpers) {
  const FailureScenario none = FailureScenario::none();
  EXPECT_EQ(none.failure_count(), 0u);
  const FailureScenario crash =
      FailureScenario::crash(ProcessorId{1}, 2.5);
  EXPECT_EQ(crash.failure_count(), 1u);
  EXPECT_DOUBLE_EQ(crash.events.front().time, 2.5);
  const FailureScenario dead =
      FailureScenario::dead_from_start({ProcessorId{0}, ProcessorId{2}});
  EXPECT_EQ(dead.failure_count(), 2u);
}

}  // namespace
}  // namespace ftsched
