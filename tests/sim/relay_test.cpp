// Multi-hop (store-and-forward) communication on a chain — the paper's
// Figure 8 routing example: P1 and P3 share no link, so their transfers
// relay through P2, and P2's failure must be handled like the §5.5 routed
// send/receive procedures describe.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

/// The paper's algorithm on the Figure-8 chain P1 - P2 - P3.
workload::OwnedProblem chain_problem(int k) {
  auto algorithm = workload::paper_algorithm();
  auto arch = std::make_unique<ArchitectureGraph>();
  const ProcessorId p1 = arch->add_processor("P1");
  const ProcessorId p2 = arch->add_processor("P2");
  const ProcessorId p3 = arch->add_processor("P3");
  arch->add_link("L1.2", p1, p2);
  arch->add_link("L2.3", p2, p3);
  auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
  auto comm = std::make_unique<CommTable>(*algorithm, *arch);
  for (const Operation& op : algorithm->operations()) {
    exec->set_uniform(op.id, 1.0);
  }
  for (const Dependency& dep : algorithm->dependencies()) {
    comm->set_uniform(dep.id, 0.5);
  }
  return workload::assemble(std::move(algorithm), std::move(arch),
                            std::move(exec), std::move(comm), k);
}

TEST(Relay, SchedulesValidateOnChains) {
  const workload::OwnedProblem ex = chain_problem(1);
  for (const HeuristicKind kind :
       {HeuristicKind::kBase, HeuristicKind::kSolution1,
        HeuristicKind::kSolution2}) {
    const auto result = schedule(ex.problem, kind);
    ASSERT_TRUE(result.has_value()) << to_string(kind);
    EXPECT_TRUE(validate(result.value()).empty()) << to_string(kind);
  }
}

TEST(Relay, MultiHopTransfersAppearWhenEndsAreFar) {
  // Force producers onto P1 and consumers onto P3: their transfers must
  // occupy both links in sequence.
  workload::OwnedProblem ex = chain_problem(0);
  const OperationId a = ex.algorithm->find_operation("A");
  const OperationId b = ex.algorithm->find_operation("B");
  // Pin A to P1 and B to P3.
  ex.exec->set(a, ProcessorId{1}, kInfinite);
  ex.exec->set(a, ProcessorId{2}, kInfinite);
  ex.exec->set(b, ProcessorId{0}, kInfinite);
  ex.exec->set(b, ProcessorId{1}, kInfinite);
  const Schedule schedule = schedule_base(ex.problem).value();
  EXPECT_TRUE(validate(schedule).empty());

  bool relayed = false;
  for (const ScheduledComm& comm : schedule.comms()) {
    if (ex.algorithm->dependency(comm.dep).name == "A->B") {
      EXPECT_EQ(comm.segments.size(), 2u);
      EXPECT_EQ(schedule.comm_hops(comm).size(), 3u);
      // Store-and-forward: the second hop starts no earlier than the first
      // ends.
      EXPECT_GE(comm.segments[1].start, comm.segments[0].end);
      relayed = true;
    }
  }
  EXPECT_TRUE(relayed);

  // The simulator replays the relayed schedule exactly.
  const Simulator simulator(schedule);
  const IterationResult run = simulator.run();
  EXPECT_TRUE(run.all_outputs_produced);
  for (const ScheduledOperation& placement : schedule.operations()) {
    EXPECT_DOUBLE_EQ(run.trace.op_end(placement.op, placement.processor),
                     placement.end);
  }
}

TEST(Relay, EndpointFailureIsMaskedOnChain) {
  // K = 1 on the chain: losing an END of the chain (P1 or P3) keeps the
  // network of survivors connected, so outputs must survive. Losing the
  // MIDDLE (P2) partitions P1 from P3 — whether outputs survive then
  // depends on the placement, and no guarantee exists (the architecture's
  // intrinsic parallelism is insufficient, §8).
  const workload::OwnedProblem ex = chain_problem(1);
  for (const HeuristicKind kind :
       {HeuristicKind::kSolution1, HeuristicKind::kSolution2}) {
    const auto result = schedule(ex.problem, kind);
    ASSERT_TRUE(result.has_value());
    const Simulator simulator(result.value());
    for (const char* name : {"P1", "P3"}) {
      const ProcessorId victim =
          ex.problem.architecture->find_processor(name);
      EXPECT_TRUE(simulator.run(FailureScenario::dead_from_start({victim}))
                      .all_outputs_produced)
          << to_string(kind) << " victim " << name;
      EXPECT_TRUE(
          simulator
              .run(FailureScenario::crash(victim, result->makespan() / 2))
              .all_outputs_produced)
          << to_string(kind) << " victim " << name;
    }
  }
}

TEST(Relay, DeadRelayDropsDownstreamHops) {
  // A transfer relaying through a processor that dies mid-route never
  // completes; the value still reaches consumers that do not depend on the
  // dead relay.
  workload::OwnedProblem ex = chain_problem(0);
  const OperationId a = ex.algorithm->find_operation("A");
  const OperationId i = ex.algorithm->find_operation("I");
  ex.exec->set(a, ProcessorId{1}, kInfinite);
  ex.exec->set(a, ProcessorId{2}, kInfinite);  // A on P1
  ex.exec->set(i, ProcessorId{1}, kInfinite);
  ex.exec->set(i, ProcessorId{2}, kInfinite);  // I on P1
  const OperationId b = ex.algorithm->find_operation("B");
  ex.exec->set(b, ProcessorId{0}, kInfinite);
  ex.exec->set(b, ProcessorId{1}, kInfinite);  // B on P3 (via relay P2)
  const Schedule schedule = schedule_base(ex.problem).value();
  const Simulator simulator(schedule);
  // A ends at 2 on P1; A->B crosses L1.2 over [2, 2.5] and is forwarded by
  // P2 over L2.3 during [2.5, 3]. Kill the relay mid-forward.
  const IterationResult run =
      simulator.run(FailureScenario::crash(ProcessorId{1}, 2.6));
  EXPECT_FALSE(run.all_outputs_produced);
  EXPECT_TRUE(is_infinite(run.trace.op_end(b, ProcessorId{2})));
}

}  // namespace
}  // namespace ftsched
