#include "sim/reliability.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(Reliability, DegenerateProbabilities) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  EXPECT_DOUBLE_EQ(analyze_reliability(schedule, 0.0).iteration_reliability,
                   1.0);
  // With every processor failed, outputs are certainly lost.
  EXPECT_DOUBLE_EQ(analyze_reliability(schedule, 1.0).iteration_reliability,
                   0.0);
}

TEST(Reliability, FaultToleranceBeatsBaseline) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule ft = schedule_solution1(ex.problem).value();
  const Schedule base = schedule_base(ex.problem).value();
  const double p = 0.05;
  const double r_ft = analyze_reliability(ft, p).iteration_reliability;
  const double r_base = analyze_reliability(base, p).iteration_reliability;
  EXPECT_GT(r_ft, r_base);
  // K=1 over 3 processors at p=0.05: reliability beyond surviving all.
  EXPECT_GT(r_ft, std::pow(1 - p, 3));
}

TEST(Reliability, GuaranteedBoundIsABound) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  for (const double p : {0.01, 0.1, 0.3}) {
    const ReliabilityReport report = analyze_reliability(schedule, p);
    EXPECT_LE(report.lower_bound, report.iteration_reliability + 1e-12);
    EXPECT_LE(report.iteration_reliability, 1.0 + 1e-12);
  }
}

TEST(Reliability, MaskedBySizeMatchesKGuarantee) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const ReliabilityReport report = analyze_reliability(schedule, 0.1);
  ASSERT_EQ(report.masked_by_size.size(), 4u);  // sizes 0..3
  // Everything up to K=1 masked.
  EXPECT_EQ(report.masked_by_size[0], (std::pair<std::size_t, std::size_t>{1, 1}));
  EXPECT_EQ(report.masked_by_size[1], (std::pair<std::size_t, std::size_t>{3, 3}));
  // Nothing of size 3 can be masked (all processors dead).
  EXPECT_EQ(report.masked_by_size[3].first, 0u);
}

TEST(Reliability, CheapBoundModeSkipsLargeSubsets) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  ReliabilityOptions cheap;
  cheap.exhaustive_beyond_k = false;
  const ReliabilityReport bound = analyze_reliability(schedule, 0.2, cheap);
  const ReliabilityReport exact = analyze_reliability(schedule, 0.2);
  EXPECT_DOUBLE_EQ(bound.iteration_reliability, bound.lower_bound);
  EXPECT_LE(bound.iteration_reliability, exact.iteration_reliability);
}

TEST(Reliability, RejectsBadInput) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  EXPECT_THROW(analyze_reliability(schedule, -0.1), std::invalid_argument);
  EXPECT_THROW(analyze_reliability(schedule, 1.1), std::invalid_argument);
  ReliabilityOptions tiny;
  tiny.max_processors = 2;
  EXPECT_THROW(analyze_reliability(schedule, 0.1, tiny),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
