// Exhaustive fault injection on the paper's examples: every K-subset of
// processors, dead-from-start and crashing at a sweep of instants, must
// leave every output produced (the paper's headline property, §5.6).
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

struct Case {
  HeuristicKind kind;
  bool example1;  // else example 2
};

class FaultInjection : public ::testing::TestWithParam<Case> {};

TEST_P(FaultInjection, EverySingleFailureIsMasked) {
  const workload::OwnedProblem ex = GetParam().example1
                                        ? workload::paper_example1()
                                        : workload::paper_example2();
  const Schedule sched =
      ftsched::schedule(ex.problem, GetParam().kind).value();
  const Simulator simulator(sched);
  const Time makespan = sched.makespan();

  for (const std::vector<ProcessorId>& subset :
       failure_subsets(ex.problem.architecture->processor_count(), 1)) {
    // Permanent, known from the iteration start.
    const IterationResult settled =
        simulator.run(FailureScenario::dead_from_start(subset));
    EXPECT_TRUE(settled.all_outputs_produced)
        << "dead from start: P" << subset.front().value() + 1;

    // Crash at every tenth of the iteration (transient regime).
    for (int step = 0; step <= 10; ++step) {
      FailureScenario scenario;
      scenario.events.push_back(
          FailureEvent{subset.front(), makespan * step / 10.0});
      const IterationResult transient = simulator.run(scenario);
      EXPECT_TRUE(transient.all_outputs_produced)
          << "crash of P" << subset.front().value() + 1 << " at t="
          << makespan * step / 10.0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, FaultInjection,
    ::testing::Values(Case{HeuristicKind::kSolution1, true},
                      Case{HeuristicKind::kSolution2, false},
                      Case{HeuristicKind::kSolution2, true},
                      Case{HeuristicKind::kSolution1, false}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.kind == HeuristicKind::kSolution1
                             ? "Solution1"
                             : "Solution2";
      name += info.param.example1 ? "Bus" : "P2P";
      return name;
    });

}  // namespace
}  // namespace ftsched
