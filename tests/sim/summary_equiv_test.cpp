// Three contracts of the rebuilt event core, pinned over scenario sweeps:
//
//  1. Summary equivalence — Simulator::run_summary produces, field for
//     field, the digest a full Simulator::run would derive from its trace
//     (the batched campaign path simulates without materializing traces).
//  2. Cross-scheduler byte identity — the binary-heap and calendar event
//     queues yield bit-identical traces, digests, and detections for the
//     same scenario. Events are totally ordered by (time, kind, push
//     order); no implementation may break ties differently.
//  3. Verdict invariance under equal-time ties — scenarios engineered so
//     many events share exact instants (crashes and window edges placed on
//     schedule completion times) produce the same mission results and the
//     same oracle verdicts whichever queue implementation served them.
//     Equal-time reordering freedom inside the queue cannot leak into a
//     verdict.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "campaign/oracle.hpp"
#include "sched/heuristics.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

/// The digest run() implies: trace-event counts plus the result fields.
IterationSummary digest_of(const IterationResult& result) {
  IterationSummary digest;
  digest.all_outputs_produced = result.all_outputs_produced;
  digest.response_time = result.response_time;
  digest.events_executed = result.events_executed;
  digest.detected_failures = result.detected_failures;
  for (const TraceEvent& event : result.trace.events()) {
    switch (event.kind) {
      case TraceEvent::Kind::kTimeout: ++digest.timeouts; break;
      case TraceEvent::Kind::kElection: ++digest.elections; break;
      case TraceEvent::Kind::kTransferStart: ++digest.transfer_starts; break;
      default: break;
    }
  }
  return digest;
}

void expect_equal(const IterationSummary& a, const IterationSummary& b) {
  EXPECT_EQ(a.all_outputs_produced, b.all_outputs_produced);
  EXPECT_EQ(a.response_time, b.response_time);  // exact, not epsilon
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.elections, b.elections);
  EXPECT_EQ(a.transfer_starts, b.transfer_starts);
  EXPECT_EQ(a.detected_failures, b.detected_failures);
}

/// Randomized scenarios with deliberately colliding instants: every fault
/// time is quantized to 1/8ths of the makespan, so crashes, window edges,
/// link deaths, and static schedule events pile onto the same instants.
std::vector<FailureScenario> tie_heavy_scenarios(const Schedule& schedule,
                                                 std::uint64_t seed,
                                                 int count) {
  const Time makespan = schedule.makespan();
  const auto nprocs = static_cast<std::uint64_t>(
      schedule.problem().architecture->processor_count());
  std::mt19937_64 rng(seed);
  const auto instant = [&] {
    return makespan * static_cast<Time>(rng() % 9) / 8.0;
  };
  const auto proc = [&] {
    return ProcessorId{static_cast<std::int32_t>(rng() % nprocs)};
  };
  std::vector<FailureScenario> scenarios;
  scenarios.push_back({});  // failure-free floor
  for (int i = 0; i < count; ++i) {
    FailureScenario scenario;
    if (rng() % 2 != 0) {
      scenario.failed_at_start.push_back(proc());
    }
    if (rng() % 2 != 0) {
      scenario.events.push_back(FailureEvent{proc(), instant()});
    }
    if (rng() % 3 == 0) {
      const Time open = instant();
      scenario.silent_windows.push_back(
          SilentWindow{proc(), open, open + makespan / 8.0});
    }
    if (rng() % 4 == 0) {
      scenario.link_events.push_back(LinkFailureEvent{LinkId{0}, instant()});
    }
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

void check_schedule(const Schedule& schedule, std::uint64_t seed) {
  const Simulator heap(schedule, {EventSchedulerKind::kBinaryHeap});
  const Simulator calendar(schedule, {EventSchedulerKind::kCalendar});
  Simulator::Scratch heap_scratch;
  Simulator::Scratch calendar_scratch;
  IterationSummary heap_summary;
  IterationSummary calendar_summary;

  for (const FailureScenario& scenario :
       tie_heavy_scenarios(schedule, seed, 24)) {
    const IterationResult via_heap = heap.run(scenario);
    const IterationResult via_calendar = calendar.run(scenario);

    // Contract 2: byte-identical traces across queue implementations.
    ASSERT_EQ(via_heap.trace.events().size(),
              via_calendar.trace.events().size());
    for (std::size_t i = 0; i < via_heap.trace.events().size(); ++i) {
      ASSERT_TRUE(via_heap.trace.events()[i] == via_calendar.trace.events()[i])
          << "trace diverges at event " << i;
    }
    EXPECT_EQ(via_heap.events_executed, via_calendar.events_executed);

    // Contract 1: the trace-free digest equals the trace-derived one, for
    // both schedulers.
    heap.run_summary(scenario, heap_scratch, heap_summary);
    expect_equal(heap_summary, digest_of(via_heap));
    calendar.run_summary(scenario, calendar_scratch, calendar_summary);
    expect_equal(calendar_summary, digest_of(via_calendar));
    expect_equal(heap_summary, calendar_summary);
  }
}

TEST(SummaryEquivalence, PaperExample1Solution1) {
  const OwnedProblem ex = workload::paper_example1();
  check_schedule(schedule_solution1(ex.problem).value(), 11);
}

TEST(SummaryEquivalence, PaperExample2Solution2) {
  const OwnedProblem ex = workload::paper_example2();
  check_schedule(schedule_solution2(ex.problem).value(), 12);
}

TEST(SummaryEquivalence, RandomProblems) {
  for (const std::uint64_t seed : {3u, 21u}) {
    workload::RandomProblemParams params;
    params.dag.operations = 14;
    params.processors = 4;
    params.failures_to_tolerate = 1;
    params.seed = seed;
    const OwnedProblem ex = workload::random_problem(params);
    for (const HeuristicKind kind :
         {HeuristicKind::kSolution1, HeuristicKind::kSolution2}) {
      const auto result = schedule(ex.problem, kind);
      ASSERT_TRUE(result.has_value()) << result.error().message;
      SCOPED_TRACE(to_string(kind) + " seed " + std::to_string(seed));
      check_schedule(result.value(), seed);
    }
  }
}

TEST(SummaryEquivalence, OracleVerdictsInvariantUnderQueueTies) {
  // Contract 3 at the oracle level: multi-iteration missions whose fault
  // instants collide with schedule completion times are judged identically
  // whichever queue implementation ran them — equal-time processing order
  // is fixed by (kind, push order), not by the queue's internals.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator heap(schedule, {EventSchedulerKind::kBinaryHeap});
  const Simulator calendar(schedule, {EventSchedulerKind::kCalendar});
  const campaign::Oracle oracle(schedule);
  const Time makespan = schedule.makespan();
  const auto nprocs = static_cast<std::int32_t>(
      schedule.problem().architecture->processor_count());

  std::mt19937_64 rng(4242);
  int judged = 0;
  for (int round = 0; round < 40; ++round) {
    MissionPlan plan;
    plan.iterations = 1 + static_cast<int>(rng() % 3);
    const Time instant = makespan * static_cast<Time>(rng() % 9) / 8.0;
    const ProcessorId victim{static_cast<std::int32_t>(
        rng() % static_cast<std::uint64_t>(nprocs))};
    plan.failures.push_back(
        {static_cast<int>(rng() % static_cast<std::uint64_t>(plan.iterations)),
         FailureEvent{victim, instant}});
    if (rng() % 2 != 0) {
      // A window opening at the exact same instant on another processor.
      plan.silences.push_back(
          {plan.failures[0].iteration,
           SilentWindow{ProcessorId{(victim.value() + 1) % nprocs}, instant,
                        instant + makespan / 8.0}});
    }

    const MissionResult via_heap = run_mission(heap, plan);
    const MissionResult via_calendar = run_mission(calendar, plan);
    ASSERT_EQ(via_heap.iterations.size(), via_calendar.iterations.size());
    for (std::size_t i = 0; i < via_heap.iterations.size(); ++i) {
      EXPECT_EQ(via_heap.iterations[i].all_outputs_produced,
                via_calendar.iterations[i].all_outputs_produced);
      EXPECT_EQ(via_heap.iterations[i].response_time,
                via_calendar.iterations[i].response_time);
      EXPECT_EQ(via_heap.iterations[i].known_failed,
                via_calendar.iterations[i].known_failed);
      EXPECT_EQ(via_heap.iterations[i].suspected,
                via_calendar.iterations[i].suspected);
    }

    const campaign::Verdict a = oracle.judge(plan, via_heap);
    const campaign::Verdict b = oracle.judge(plan, via_calendar);
    EXPECT_EQ(a.within_contract, b.within_contract);
    EXPECT_EQ(a.outputs_lost, b.outputs_lost);
    EXPECT_EQ(a.response_exceeded, b.response_exceeded);
    EXPECT_EQ(a.first_violation_iteration, b.first_violation_iteration);
    EXPECT_EQ(a.violations, b.violations);
    ++judged;
  }
  EXPECT_EQ(judged, 40);
}

}  // namespace
}  // namespace ftsched
