// Simulator semantics on the paper's examples: the failure-free run must
// reproduce the static schedule date for date (no spurious timeouts, no
// extra transfers), and the solution-1 machinery must reproduce the
// Figure 18 behaviours when P2 crashes.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

/// Every replica's simulated completion equals its static date.
void expect_matches_schedule(const Schedule& schedule, const Trace& trace) {
  for (const ScheduledOperation& placement : schedule.operations()) {
    EXPECT_DOUBLE_EQ(trace.op_end(placement.op, placement.processor),
                     placement.end)
        << schedule.problem().algorithm->operation(placement.op).name
        << " on "
        << schedule.problem().architecture->processor(placement.processor)
               .name;
  }
}

/// Failure-free response time: every output is produced first by its main
/// replica, so the iteration responds at the latest main-output completion.
Time nominal_response(const Schedule& schedule) {
  Time response = 0;
  for (const Operation& op : schedule.problem().algorithm->operations()) {
    if (op.kind != OperationKind::kExtioOut) continue;
    response = std::max(response, schedule.main(op.id)->end);
  }
  return response;
}

TEST(SimulatorFailureFree, Solution1ReplaysStaticSchedule) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const IterationResult result = simulator.run();
  SCOPED_TRACE(result.trace.to_text(*ex.problem.algorithm,
                                    *ex.problem.architecture));
  expect_matches_schedule(schedule, result.trace);
  EXPECT_TRUE(result.all_outputs_produced);
  EXPECT_DOUBLE_EQ(result.response_time, nominal_response(schedule));
  EXPECT_EQ(result.trace.count(TraceEvent::Kind::kTimeout), 0u);
  EXPECT_EQ(result.trace.count(TraceEvent::Kind::kElection), 0u);
  EXPECT_TRUE(result.detected_failures.empty());
  // Failure-free transfer count equals the schedule's active comm count
  // (no backup ever sends, §6.4's minimal-messages claim).
  EXPECT_EQ(result.trace.count(TraceEvent::Kind::kTransferStart),
            schedule.active_comm_count());
}

TEST(SimulatorFailureFree, Solution2ReplaysStaticSchedule) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const Simulator simulator(schedule);
  const IterationResult result = simulator.run();
  SCOPED_TRACE(result.trace.to_text(*ex.problem.algorithm,
                                    *ex.problem.architecture));
  expect_matches_schedule(schedule, result.trace);
  EXPECT_TRUE(result.all_outputs_produced);
  EXPECT_DOUBLE_EQ(result.response_time, nominal_response(schedule));
  EXPECT_EQ(result.trace.count(TraceEvent::Kind::kTimeout), 0u);
}

TEST(SimulatorFailureFree, BaselineReplaysStaticSchedule) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  const Simulator simulator(schedule);
  const IterationResult result = simulator.run();
  expect_matches_schedule(schedule, result.trace);
  EXPECT_TRUE(result.all_outputs_produced);
}

TEST(SimulatorTransient, Solution1SurvivesP2Crash) {
  // Figure 18(a): P2 crashes mid-iteration; outputs still produced, with
  // the response time stretched by the accumulated watch timeouts.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  const IterationResult nominal = simulator.run();
  const IterationResult faulty =
      simulator.run(FailureScenario::crash(p2, 3.2));
  SCOPED_TRACE(faulty.trace.to_text(*ex.problem.algorithm,
                                    *ex.problem.architecture));
  EXPECT_TRUE(faulty.all_outputs_produced);
  EXPECT_GE(faulty.response_time, nominal.response_time);
  // The crash is detected and the backups take over.
  EXPECT_GT(faulty.trace.count(TraceEvent::Kind::kTimeout), 0u);
  EXPECT_GT(faulty.trace.count(TraceEvent::Kind::kElection), 0u);
  ASSERT_EQ(faulty.detected_failures.size(), 1u);
  EXPECT_EQ(faulty.detected_failures.front(), p2);
}

TEST(SimulatorSubsequent, Solution1RunsWithoutTimeoutsOnceDetected) {
  // Figure 18(b): in iterations after the detection, every healthy
  // processor knows P2 is dead, so no time is spent waiting.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  const IterationResult transient =
      simulator.run(FailureScenario::crash(p2, 3.2));
  const IterationResult subsequent =
      simulator.run(FailureScenario::dead_from_start({p2}));
  SCOPED_TRACE(subsequent.trace.to_text(*ex.problem.algorithm,
                                        *ex.problem.architecture));
  EXPECT_TRUE(subsequent.all_outputs_produced);
  EXPECT_EQ(subsequent.trace.count(TraceEvent::Kind::kTimeout), 0u);
  // Known failures are skipped instantly, so the subsequent iteration is no
  // slower than the transient one.
  EXPECT_LE(subsequent.response_time, transient.response_time);
}

TEST(SimulatorTransient, Solution2SurvivesP2CrashWithoutTimeouts) {
  // Figure 23: P2 crashes right after computing A; the parallel redundant
  // comms mean nobody ever waits on a timeout.
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  const IterationResult faulty =
      simulator.run(FailureScenario::crash(p2, 3.0));
  SCOPED_TRACE(faulty.trace.to_text(*ex.problem.algorithm,
                                    *ex.problem.architecture));
  EXPECT_TRUE(faulty.all_outputs_produced);
  EXPECT_EQ(faulty.trace.count(TraceEvent::Kind::kTimeout), 0u);

  const IterationResult subsequent =
      simulator.run(FailureScenario::dead_from_start({p2}));
  EXPECT_TRUE(subsequent.all_outputs_produced);
}

TEST(SimulatorBaseline, LosesOutputsWhenAProcessorDies) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  const Simulator simulator(schedule);
  // The baseline places work on P2; killing it at t=0 must lose outputs.
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");
  const IterationResult result =
      simulator.run(FailureScenario::dead_from_start({p2}));
  EXPECT_FALSE(result.all_outputs_produced);
  EXPECT_TRUE(is_infinite(result.response_time));
}

}  // namespace
}  // namespace ftsched
