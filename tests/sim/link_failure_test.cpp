// Communication link failures — the paper's §8 future work, implemented:
// the simulator injects dying links; solution 2's replicated transfers over
// link-disjoint routes (SchedulerOptions::disjoint_comm_routes) mask single
// link failures where plain shortest-path routing cannot.
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "sched/heuristics.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

/// Links whose lone death (from the iteration start) loses outputs.
std::vector<LinkId> fatal_links(const Schedule& schedule) {
  const Simulator simulator(schedule);
  std::vector<LinkId> fatal;
  for (const Link& link : schedule.problem().architecture->links()) {
    FailureScenario scenario;
    scenario.failed_links_at_start = {link.id};
    if (!simulator.run(scenario).all_outputs_produced) {
      fatal.push_back(link.id);
    }
  }
  return fatal;
}

TEST(LinkFailure, SingleBusIsASinglePointOfFailure) {
  // Honest negative: with one shared medium, nothing masks its death.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  EXPECT_EQ(fatal_links(schedule).size(), 1u);
}

TEST(LinkFailure, Solution2OnFullMeshMasksAnySingleLink) {
  // Fully connected: each consumer's K+1 transfers arrive over distinct
  // direct links already, so every single link failure is masked even
  // without explicit disjoint routing.
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  EXPECT_TRUE(fatal_links(schedule).empty());
}

TEST(LinkFailure, MidIterationLinkCrashMasked) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const Simulator simulator(schedule);
  for (const Link& link : ex.problem.architecture->links()) {
    for (const double fraction : {0.25, 0.5, 0.75}) {
      FailureScenario scenario;
      scenario.link_events.push_back(
          LinkFailureEvent{link.id, schedule.makespan() * fraction});
      EXPECT_TRUE(simulator.run(scenario).all_outputs_produced)
          << link.name << " at fraction " << fraction;
    }
  }
}

TEST(LinkFailure, DisjointRoutingMasksLinksOnSparseTopologies) {
  // On a ring, shortest-path routing can funnel both replicas' transfers
  // through a shared link; disjoint routing sends them opposite ways round.
  workload::RandomProblemParams params;
  params.dag.operations = 12;
  params.dag.width = 3;
  params.arch_kind = workload::ArchKind::kRing;
  params.processors = 4;
  params.failures_to_tolerate = 1;
  params.ccr = 0.4;
  params.seed = 9;
  const OwnedProblem ex = workload::random_problem(params);

  SchedulerOptions disjoint;
  disjoint.disjoint_comm_routes = true;
  const Schedule hardened =
      schedule_solution2(ex.problem, disjoint).value();
  EXPECT_TRUE(validate(hardened).empty());
  EXPECT_TRUE(fatal_links(hardened).empty())
      << "disjoint routing should mask every single link failure on a ring";
}

TEST(LinkFailure, DisjointRoutingStillMasksProcessorFailures) {
  // Hardening against links must not cost the processor-failure guarantee.
  workload::RandomProblemParams params;
  params.dag.operations = 12;
  params.arch_kind = workload::ArchKind::kRing;
  params.processors = 5;
  params.failures_to_tolerate = 1;
  params.seed = 12;
  const OwnedProblem ex = workload::random_problem(params);
  SchedulerOptions disjoint;
  disjoint.disjoint_comm_routes = true;
  const Schedule schedule = schedule_solution2(ex.problem, disjoint).value();
  const Simulator simulator(schedule);
  for (const Processor& proc :
       ex.problem.architecture->processors()) {
    EXPECT_TRUE(simulator
                    .run(FailureScenario::dead_from_start({proc.id}))
                    .all_outputs_produced)
        << proc.name;
    EXPECT_TRUE(simulator
                    .run(FailureScenario::crash(proc.id,
                                                schedule.makespan() / 2))
                    .all_outputs_produced)
        << proc.name;
  }
}

TEST(LinkFailure, DisjointRoutingNeverFatalWorseThanPlain) {
  // The detours change greedy decisions, so the makespan can move either
  // way — what must not regress is coverage: hardened schedules have no
  // more fatal links than plain ones.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomProblemParams params;
    params.dag.operations = 15;
    params.arch_kind = workload::ArchKind::kRing;
    params.processors = 5;
    params.failures_to_tolerate = 1;
    params.ccr = 1.0;
    params.seed = seed;
    const OwnedProblem ex = workload::random_problem(params);
    SchedulerOptions disjoint;
    disjoint.disjoint_comm_routes = true;
    const Schedule plain = schedule_solution2(ex.problem).value();
    const Schedule hardened =
        schedule_solution2(ex.problem, disjoint).value();
    EXPECT_TRUE(validate(hardened).empty());
    EXPECT_LE(fatal_links(hardened).size(), fatal_links(plain).size())
        << "seed " << seed;
    EXPECT_TRUE(fatal_links(hardened).empty()) << "seed " << seed;
  }
}

TEST(LinkFailure, DisjointOptionIsNoOpForSolution1AndBus) {
  const OwnedProblem ex = workload::paper_example1();
  SchedulerOptions disjoint;
  disjoint.disjoint_comm_routes = true;
  EXPECT_DOUBLE_EQ(schedule_solution1(ex.problem, disjoint)->makespan(),
                   schedule_solution1(ex.problem)->makespan());
}

TEST(Routing, DisjointRoutesAreLinkDisjoint) {
  const ArchitectureGraph arch = topologies::ring(5);
  const RoutingTable routing(arch);
  const auto routes = routing.disjoint_routes(
      arch.find_processor("P1"), arch.find_processor("P3"), 3);
  ASSERT_EQ(routes.size(), 2u);  // a ring offers exactly two
  for (LinkId link : routes[0].links) {
    for (LinkId other : routes[1].links) {
      EXPECT_NE(link, other);
    }
  }
  // A bus offers exactly one.
  const ArchitectureGraph bus = topologies::single_bus(3);
  const RoutingTable bus_routing(bus);
  EXPECT_EQ(bus_routing
                .disjoint_routes(bus.find_processor("P1"),
                                 bus.find_processor("P2"), 4)
                .size(),
            1u);
}

}  // namespace
}  // namespace ftsched
