// Allocation accounting for the list-scheduler select loop.
//
// The engine's contract (DESIGN.md "Scheduler performance"): tentative
// evaluation allocates nothing — scratch timelines, evaluation caches, and
// kept sets live in members sized once per run — so total heap traffic of
// one schedule() call grows linearly with the problem (CSR tables, commit
// records, the schedule itself), not with steps x candidates x processors
// the way a per-evaluation scratch copy would. This binary overrides global
// operator new/delete with a toggleable counter (its own binary, so the
// override cannot leak into other test executables) and pins both the
// growth rate and an absolute per-operation budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

// Replacing the global allocation functions with a malloc/free-backed pair
// is the standard [new.delete.single] pattern, but once the sanitizers make
// GCC inline both sides into one caller it flags the new/free pairing as
// mismatched. False positive for whole-program replacement; silence it for
// this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Under AddressSanitizer the runtime's interceptors own operator new/delete;
// a partial user replacement splits allocations between the two and ASan
// (correctly, from its view) reports alloc-dealloc mismatches. Counting is
// meaningless there anyway — the Release CI job carries this check.
#if defined(__SANITIZE_ADDRESS__)
#define FTSCHED_ALLOC_COUNT_UNAVAILABLE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FTSCHED_ALLOC_COUNT_UNAVAILABLE 1
#endif
#endif

#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

}  // namespace

#ifndef FTSCHED_ALLOC_COUNT_UNAVAILABLE

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // FTSCHED_ALLOC_COUNT_UNAVAILABLE

namespace ftsched {
namespace {

workload::OwnedProblem sized_problem(std::size_t operations) {
  workload::RandomProblemParams params;
  params.dag.operations = operations;
  params.dag.width = 6;
  params.arch_kind = workload::ArchKind::kFullyConnected;
  params.processors = 4;
  params.failures_to_tolerate = 1;
  params.ccr = 0.5;
  params.seed = 97;
  return workload::random_problem(params);
}

std::size_t count_schedule_allocations(const Problem& problem) {
  g_allocations.store(0);
  g_counting.store(true);
  const Expected<Schedule> result =
      schedule(problem, HeuristicKind::kSolution2, {});
  g_counting.store(false);
  EXPECT_TRUE(result.has_value());
  return g_allocations.load();
}

TEST(AllocationCount, ScheduleHeapTrafficGrowsLinearly) {
#ifdef FTSCHED_ALLOC_COUNT_UNAVAILABLE
  GTEST_SKIP() << "sanitizer runtime owns the global allocation operators";
#endif
  const workload::OwnedProblem small = sized_problem(60);
  const workload::OwnedProblem large = sized_problem(120);

  const std::size_t small_allocs = count_schedule_allocations(small.problem);
  const std::size_t large_allocs = count_schedule_allocations(large.problem);

  // A per-evaluation scratch allocation makes heap traffic superlinear
  // (steps x candidates x processors ~ n^2: doubling n quadruples it). The
  // allocation-free select loop leaves only linear terms, so doubling the
  // problem must stay well under 3x.
  EXPECT_LT(large_allocs, 3 * small_allocs)
      << "small=" << small_allocs << " large=" << large_allocs;

  // Absolute budget: committed comm records and the schedule dominate
  // (~29 allocations/operation when this was written). The pre-incremental
  // engine sat far above 40/op (one link-timeline copy per evaluation ~
  // 80+/op); keep headroom for library-vector growth but fail on any
  // return of per-evaluation allocation.
  EXPECT_LT(large_allocs, 120 * 40u)
      << "heap traffic per operation regressed: " << large_allocs;
}

/// The cache toggle must not change what the engine allocates per
/// evaluation — OFF re-evaluates more often but still allocation-free.
TEST(AllocationCount, ReferenceModeAlsoAllocationFreePerEvaluation) {
#ifdef FTSCHED_ALLOC_COUNT_UNAVAILABLE
  GTEST_SKIP() << "sanitizer runtime owns the global allocation operators";
#endif
  const workload::OwnedProblem small = sized_problem(60);
  const workload::OwnedProblem large = sized_problem(120);

  SchedulerOptions off;
  off.incremental_select = false;

  g_allocations.store(0);
  g_counting.store(true);
  const Expected<Schedule> s = schedule(small.problem,
                                        HeuristicKind::kSolution2, off);
  g_counting.store(false);
  ASSERT_TRUE(s.has_value());
  const std::size_t small_allocs = g_allocations.load();

  g_allocations.store(0);
  g_counting.store(true);
  const Expected<Schedule> l = schedule(large.problem,
                                        HeuristicKind::kSolution2, off);
  g_counting.store(false);
  ASSERT_TRUE(l.has_value());
  const std::size_t large_allocs = g_allocations.load();

  EXPECT_LT(large_allocs, 3 * small_allocs)
      << "small=" << small_allocs << " large=" << large_allocs;
}

}  // namespace
}  // namespace ftsched
