// Incremental-select equivalence: the version-stamped evaluation cache may
// change how often candidates are re-evaluated, but never what any
// evaluation yields. Scheduling with incremental_select on and off must
// therefore produce (a) byte-identical schedules and (b) identical explain
// logs — every step, every candidate row, every σ component — because the
// explain path replays cached evaluations instead of skipping them.
#include <gtest/gtest.h>

#include <vector>

#include "sched/explain.hpp"
#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

struct EquivCase {
  HeuristicKind kind;
  workload::ArchKind arch;
  int k;
  std::uint64_t seed;
};

workload::OwnedProblem make_problem(const EquivCase& c) {
  workload::RandomProblemParams params;
  params.dag.operations = 25;
  params.dag.width = 5;
  params.arch_kind = c.arch;
  params.processors = 4;
  params.failures_to_tolerate = c.k;
  params.ccr = 0.7;
  params.seed = c.seed;
  return workload::random_problem(params);
}

SchedulerOptions base_options(const EquivCase& c, const Problem& problem) {
  SchedulerOptions options;
  if (c.kind == HeuristicKind::kHybrid) {
    options.active_comm_deps.assign(problem.algorithm->dependency_count(),
                                    false);
    for (std::size_t i = 0; i < options.active_comm_deps.size(); i += 2) {
      options.active_comm_deps[i] = true;
    }
  }
  return options;
}

void expect_logs_equal(const ExplainLog& a, const ExplainLog& b) {
  EXPECT_EQ(a.critical_path, b.critical_path);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    const ExplainStep& sa = a.steps[s];
    const ExplainStep& sb = b.steps[s];
    EXPECT_EQ(sa.step, sb.step) << "step " << s;
    EXPECT_EQ(sa.chosen, sb.chosen) << "step " << s;
    EXPECT_EQ(sa.urgency, sb.urgency) << "step " << s;
    ASSERT_EQ(sa.candidates.size(), sb.candidates.size()) << "step " << s;
    for (std::size_t c = 0; c < sa.candidates.size(); ++c) {
      const ExplainCandidate& ca = sa.candidates[c];
      const ExplainCandidate& cb = sb.candidates[c];
      EXPECT_EQ(ca.op, cb.op) << "step " << s << " cand " << c;
      EXPECT_EQ(ca.proc, cb.proc) << "step " << s << " cand " << c;
      // Exact equality on purpose: a cached evaluation must be the same
      // doubles re-evaluation would compute, not merely epsilon-close.
      EXPECT_EQ(ca.start, cb.start) << "step " << s << " cand " << c;
      EXPECT_EQ(ca.duration, cb.duration) << "step " << s << " cand " << c;
      EXPECT_EQ(ca.tail, cb.tail) << "step " << s << " cand " << c;
      EXPECT_EQ(ca.penalty, cb.penalty) << "step " << s << " cand " << c;
      EXPECT_EQ(ca.sigma, cb.sigma) << "step " << s << " cand " << c;
      EXPECT_EQ(ca.kept, cb.kept) << "step " << s << " cand " << c;
    }
  }
}

TEST(ExplainEquivalence, IncrementalOnOffIdenticalLogsAndSchedules) {
  const std::vector<EquivCase> cases = {
      {HeuristicKind::kBase, workload::ArchKind::kBus, 0, 7},
      {HeuristicKind::kSolution1, workload::ArchKind::kBus, 1, 19},
      {HeuristicKind::kSolution1, workload::ArchKind::kFullyConnected, 2, 19},
      {HeuristicKind::kSolution2, workload::ArchKind::kBus, 1, 31},
      {HeuristicKind::kSolution2, workload::ArchKind::kFullyConnected, 2, 31},
      {HeuristicKind::kHybrid, workload::ArchKind::kFullyConnected, 1, 43},
  };
  for (const EquivCase& c : cases) {
    const workload::OwnedProblem ex = make_problem(c);

    ExplainLog log_inc;
    SchedulerOptions inc = base_options(c, ex.problem);
    inc.incremental_select = true;
    inc.explain = &log_inc;
    const Expected<Schedule> with_cache = schedule(ex.problem, c.kind, inc);
    ASSERT_TRUE(with_cache.has_value());

    ExplainLog log_ref;
    SchedulerOptions ref = base_options(c, ex.problem);
    ref.incremental_select = false;
    ref.explain = &log_ref;
    const Expected<Schedule> reference = schedule(ex.problem, c.kind, ref);
    ASSERT_TRUE(reference.has_value());

    EXPECT_EQ(schedule_hash(with_cache.value()),
              schedule_hash(reference.value()))
        << "kind=" << static_cast<int>(c.kind) << " seed=" << c.seed;
    expect_logs_equal(log_inc, log_ref);
  }
}

/// The cache must also be inert when explain is off: same schedule bytes
/// with and without the log attached, cache on.
TEST(ExplainEquivalence, ExplainRecordingDoesNotPerturbSchedule) {
  const EquivCase c{HeuristicKind::kSolution2,
                    workload::ArchKind::kFullyConnected, 2, 19};
  const workload::OwnedProblem ex = make_problem(c);

  SchedulerOptions quiet = base_options(c, ex.problem);
  const Expected<Schedule> silent = schedule(ex.problem, c.kind, quiet);
  ASSERT_TRUE(silent.has_value());

  ExplainLog log;
  SchedulerOptions loud = base_options(c, ex.problem);
  loud.explain = &log;
  const Expected<Schedule> logged = schedule(ex.problem, c.kind, loud);
  ASSERT_TRUE(logged.has_value());

  EXPECT_EQ(schedule_hash(silent.value()), schedule_hash(logged.value()));
  EXPECT_FALSE(log.steps.empty());
}

}  // namespace
}  // namespace ftsched
