#include "sched/metrics.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(Metrics, PaperExample1) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule ft = schedule_solution1(ex.problem).value();
  const Schedule base = schedule_base(ex.problem).value();

  const ScheduleMetrics m = compute_metrics(ft);
  EXPECT_DOUBLE_EQ(m.makespan, 9.4);
  EXPECT_EQ(m.replicas, 14u);  // 7 operations x (K+1)
  EXPECT_GT(m.inter_processor_comms, 0u);
  EXPECT_GT(m.passive_comms, 0u);
  EXPECT_GT(m.processor_utilisation, 0.0);
  EXPECT_LE(m.processor_utilisation, 1.0);
  EXPECT_GT(m.link_utilisation, 0.0);
  EXPECT_LE(m.link_utilisation, 1.0);

  EXPECT_NEAR(overhead(ft, base), 0.6, 1e-9);
}

TEST(Metrics, FaultToleranceCostsReplicasAndComms) {
  const workload::OwnedProblem ex = workload::paper_example2();
  const ScheduleMetrics ft =
      compute_metrics(schedule_solution2(ex.problem).value());
  const ScheduleMetrics base =
      compute_metrics(schedule_base(ex.problem).value());
  EXPECT_EQ(ft.replicas, 2 * base.replicas);
  // Solution 2 replicates communications: strictly more transfers.
  EXPECT_GT(ft.inter_processor_comms, base.inter_processor_comms);
  EXPECT_EQ(ft.passive_comms, 0u);
}

TEST(Metrics, MinPeriodBoundsThroughput) {
  const workload::OwnedProblem ex = workload::paper_example1();
  for (const HeuristicKind kind :
       {HeuristicKind::kBase, HeuristicKind::kSolution1,
        HeuristicKind::kSolution2}) {
    const Schedule s = schedule(ex.problem, kind).value();
    const ScheduleMetrics m = compute_metrics(s);
    EXPECT_GT(m.min_period, 0.0) << to_string(kind);
    EXPECT_LE(m.min_period, m.makespan + kTimeEpsilon) << to_string(kind);
  }
  // Solution 1's busiest resource (P2 runs I,A,B,D,E,O back to back) is a
  // hand-checkable bound: 1+2+1.5+1+1+1.5 = 8.
  const Schedule sol1 = schedule_solution1(ex.problem).value();
  EXPECT_DOUBLE_EQ(compute_metrics(sol1).min_period, 8.0);
}

TEST(Metrics, EmptySchedule) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule empty(ex.problem, HeuristicKind::kBase);
  const ScheduleMetrics m = compute_metrics(empty);
  EXPECT_DOUBLE_EQ(m.makespan, 0.0);
  EXPECT_EQ(m.replicas, 0u);
  EXPECT_DOUBLE_EQ(m.processor_utilisation, 0.0);
}

}  // namespace
}  // namespace ftsched
