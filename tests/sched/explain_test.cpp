// The scheduler decision log: with SchedulerOptions::explain set, the
// engine records every (operation, processor) pressure evaluation per mSn
// step, and the recorded numbers must reproduce the σ definition of §6.2.
#include "sched/explain.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(ExplainLog, OneStepPerOperationInSchedulingOrder) {
  const workload::OwnedProblem ex = workload::paper_example1();
  ExplainLog log;
  SchedulerOptions options;
  options.explain = &log;
  const Expected<Schedule> result =
      schedule(ex.problem, HeuristicKind::kSolution1, options);
  ASSERT_TRUE(result.has_value());

  EXPECT_EQ(log.steps.size(), ex.problem.algorithm->operation_count());
  for (std::size_t i = 0; i < log.steps.size(); ++i) {
    EXPECT_EQ(log.steps[i].step, i);
    EXPECT_TRUE(log.steps[i].chosen.valid());
    EXPECT_FALSE(log.steps[i].candidates.empty());
  }
}

TEST(ExplainLog, SigmaEqualsItsComponents) {
  // σ = S + Δ + E − R (+ successor penalty, zero here by default).
  const workload::OwnedProblem ex = workload::paper_example1();
  ExplainLog log;
  SchedulerOptions options;
  options.explain = &log;
  ASSERT_TRUE(
      schedule(ex.problem, HeuristicKind::kSolution1, options).has_value());

  ASSERT_GT(log.critical_path, 0);
  for (const ExplainStep& step : log.steps) {
    for (const ExplainCandidate& candidate : step.candidates) {
      EXPECT_NEAR(candidate.sigma,
                  candidate.start + candidate.duration + candidate.tail -
                      log.critical_path + candidate.penalty,
                  1e-9);
    }
  }
}

TEST(ExplainLog, KeepsKPlusOneAssignmentsOfEveryCandidate) {
  const workload::OwnedProblem ex = workload::paper_example1();
  ExplainLog log;
  SchedulerOptions options;
  options.explain = &log;
  const Expected<Schedule> result =
      schedule(ex.problem, HeuristicKind::kSolution1, options);
  ASSERT_TRUE(result.has_value());
  const std::size_t replicas =
      static_cast<std::size_t>(result->failures_tolerated()) + 1;

  for (const ExplainStep& step : log.steps) {
    std::size_t chosen_kept = 0;
    Time max_kept_sigma = -kInfinite;
    for (const ExplainCandidate& candidate : step.candidates) {
      if (candidate.op == step.chosen && candidate.kept) {
        chosen_kept += 1;
        max_kept_sigma = std::max(max_kept_sigma, candidate.sigma);
      }
    }
    EXPECT_EQ(chosen_kept, replicas);
    // The step's urgency is the largest σ of the winner's kept set.
    EXPECT_NEAR(step.urgency, max_kept_sigma, 1e-9);
  }
}

TEST(ExplainLog, BaseHeuristicKeepsSingleAssignments) {
  const workload::OwnedProblem ex = workload::paper_example1();
  ExplainLog log;
  SchedulerOptions options;
  options.explain = &log;
  ASSERT_TRUE(
      schedule(ex.problem, HeuristicKind::kBase, options).has_value());
  for (const ExplainStep& step : log.steps) {
    std::size_t chosen_kept = 0;
    for (const ExplainCandidate& candidate : step.candidates) {
      if (candidate.op == step.chosen && candidate.kept) chosen_kept += 1;
    }
    EXPECT_EQ(chosen_kept, 1u);
  }
}

TEST(ExplainLog, TextRenderingNamesEveryScheduledOperation) {
  const workload::OwnedProblem ex = workload::paper_example1();
  ExplainLog log;
  SchedulerOptions options;
  options.explain = &log;
  ASSERT_TRUE(
      schedule(ex.problem, HeuristicKind::kSolution1, options).has_value());

  const std::string text = log.to_text(ex.problem);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  for (const Operation& op : ex.problem.algorithm->operations()) {
    EXPECT_NE(text.find("scheduled " + op.name), std::string::npos)
        << "missing decision line for " << op.name << " in:\n"
        << text;
  }
}

TEST(ExplainLog, DisabledByDefault) {
  // The default options carry no log pointer; scheduling must not record.
  const workload::OwnedProblem ex = workload::paper_example1();
  SchedulerOptions options;
  EXPECT_EQ(options.explain, nullptr);
  ASSERT_TRUE(
      schedule(ex.problem, HeuristicKind::kSolution1, options).has_value());
}

}  // namespace
}  // namespace ftsched
