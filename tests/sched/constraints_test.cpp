// Hard scheduling constraints (SchedulingConstraints): pins force a
// placement, forbids exclude one, link bans re-route a dependency's
// transfers, the empty set is byte-identical to the unconstrained engine,
// and infeasible constraint sets are rejected as Errors, never silently
// dropped — the contract the counterexample-guided repair engine builds on.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

OwnedProblem bus_problem() {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.processors = 4;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  return workload::random_problem(params);
}

OwnedProblem ring_problem() {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.arch_kind = workload::ArchKind::kRing;
  params.processors = 4;
  params.failures_to_tolerate = 1;
  params.seed = 7;
  return workload::random_problem(params);
}

TEST(Constraints, EmptySetIsByteIdenticalToUnconstrained) {
  const OwnedProblem ex = bus_problem();
  const Schedule base = schedule_solution2(ex.problem).value();
  SchedulerOptions options;
  options.constraints = SchedulingConstraints{};
  const Schedule constrained =
      schedule_solution2(ex.problem, options).value();
  EXPECT_EQ(schedule_hash(base), schedule_hash(constrained));
}

TEST(Constraints, PinForcesAReplicaOntoTheProcessor) {
  const OwnedProblem ex = bus_problem();
  const Schedule base = schedule_solution2(ex.problem).value();

  // Pin an operation onto an allowed processor the unconstrained schedule
  // did NOT pick, so the pin is observable.
  const AlgorithmGraph& graph = *ex.problem.algorithm;
  OperationId victim;
  ProcessorId target;
  for (const Operation& op : graph.operations()) {
    for (const Processor& proc : ex.problem.architecture->processors()) {
      if (ex.problem.exec->allowed(op.id, proc.id) &&
          base.replica_on(op.id, proc.id) == nullptr) {
        victim = op.id;
        target = proc.id;
        break;
      }
    }
    if (victim.valid()) break;
  }
  ASSERT_TRUE(victim.valid());

  SchedulerOptions options;
  options.constraints.pinned.push_back(
      SchedulingConstraints::Pin{victim, target});
  const Schedule pinned = schedule_solution2(ex.problem, options).value();
  EXPECT_NE(pinned.replica_on(victim, target), nullptr);
  EXPECT_EQ(pinned.replicas(victim).size(), base.replicas(victim).size());
}

TEST(Constraints, ForbidExcludesTheProcessor) {
  const OwnedProblem ex = bus_problem();
  const Schedule base = schedule_solution2(ex.problem).value();

  // Forbid a placement the unconstrained schedule DID pick, for an op that
  // keeps at least K+1 other allowed processors.
  const AlgorithmGraph& graph = *ex.problem.algorithm;
  const std::size_t replicas =
      static_cast<std::size_t>(ex.problem.replication_factor());
  OperationId victim;
  ProcessorId banned;
  for (const Operation& op : graph.operations()) {
    std::size_t allowed = 0;
    for (const Processor& proc : ex.problem.architecture->processors()) {
      if (ex.problem.exec->allowed(op.id, proc.id)) ++allowed;
    }
    if (allowed <= replicas) continue;
    for (const Processor& proc : ex.problem.architecture->processors()) {
      if (base.replica_on(op.id, proc.id) != nullptr) {
        victim = op.id;
        banned = proc.id;
        break;
      }
    }
    if (victim.valid()) break;
  }
  ASSERT_TRUE(victim.valid());

  SchedulerOptions options;
  options.constraints.forbidden.push_back(
      SchedulingConstraints::Forbid{victim, banned});
  const Schedule forbidden = schedule_solution2(ex.problem, options).value();
  EXPECT_EQ(forbidden.replica_on(victim, banned), nullptr);
  EXPECT_EQ(forbidden.replicas(victim).size(), replicas);
}

TEST(Constraints, ForbidLinkReroutesTheDependency) {
  const OwnedProblem ex = ring_problem();
  const Schedule base = schedule_solution1(ex.problem).value();

  // Find a dependency with a scheduled transfer crossing some link whose
  // endpoints stay connected without it (always true on a ring).
  DependencyId dep;
  LinkId banned;
  for (const Dependency& d : ex.problem.algorithm->dependencies()) {
    for (const ScheduledComm* comm : base.comms_of(d.id)) {
      if (!comm->segments.empty()) {
        dep = d.id;
        banned = comm->segments.front().link;
        break;
      }
    }
    if (dep.valid()) break;
  }
  ASSERT_TRUE(dep.valid());

  SchedulerOptions options;
  options.constraints.forbidden_links.push_back(
      SchedulingConstraints::ForbidLink{dep, banned});
  const Schedule rerouted = schedule_solution1(ex.problem, options).value();
  for (const ScheduledComm* comm : rerouted.comms_of(dep)) {
    for (const CommSegment& segment : comm->segments) {
      EXPECT_NE(segment.link, banned);
    }
  }
}

TEST(Constraints, InfeasiblePinIsAnErrorNotSilentlyDropped) {
  const OwnedProblem ex = bus_problem();

  // Pin onto a disallowed processor: the random workload pins extio ops to
  // K+1 processors, so at least one (op, proc) pair is disallowed.
  OperationId victim;
  ProcessorId disallowed;
  for (const Operation& op : ex.problem.algorithm->operations()) {
    for (const Processor& proc : ex.problem.architecture->processors()) {
      if (!ex.problem.exec->allowed(op.id, proc.id)) {
        victim = op.id;
        disallowed = proc.id;
        break;
      }
    }
    if (victim.valid()) break;
  }
  ASSERT_TRUE(victim.valid());

  SchedulerOptions options;
  options.constraints.pinned.push_back(
      SchedulingConstraints::Pin{victim, disallowed});
  const Expected<Schedule> result =
      schedule_solution2(ex.problem, options);
  EXPECT_FALSE(result.has_value());

  // More pins than replica slots is equally infeasible.
  SchedulerOptions overfull;
  const OperationId op = ex.problem.algorithm->operations().front().id;
  for (const Processor& proc : ex.problem.architecture->processors()) {
    overfull.constraints.pinned.push_back(
        SchedulingConstraints::Pin{op, proc.id});
  }
  EXPECT_FALSE(schedule_solution2(ex.problem, overfull).has_value());
}

}  // namespace
}  // namespace ftsched
