// Static timeout chains (§6.3): election order, chain lengths, the d_m
// recurrence, and the schedule-aware contention refinement.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/timeouts.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

class TimeoutsTest : public ::testing::Test {
 protected:
  TimeoutsTest()
      : ex_(workload::paper_example1()),
        schedule_(schedule_solution1(ex_.problem).value()),
        routing_(*ex_.problem.architecture),
        timeouts_(schedule_, routing_) {}

  DependencyId dep(const char* name) const {
    for (const Dependency& d : ex_.problem.algorithm->dependencies()) {
      if (d.name == name) return d.id;
    }
    return DependencyId{};
  }
  ProcessorId proc(const char* name) const {
    return ex_.problem.architecture->find_processor(name);
  }

  OwnedProblem ex_;
  Schedule schedule_;
  RoutingTable routing_;
  TimeoutTable timeouts_;
};

TEST_F(TimeoutsTest, ConsumerChainWatchesAllRanks) {
  // B's replicas: main on P2 (ends 4.5), backup on P3 (ends 5). E's backup
  // replica on P1 consumes B->E remotely: it watches both.
  const TimeoutChain* chain = timeouts_.chain(dep("B->E"), proc("P1"));
  ASSERT_NE(chain, nullptr);
  ASSERT_EQ(chain->entries.size(), 2u);
  EXPECT_EQ(chain->entries[0].rank, 0);
  EXPECT_EQ(chain->entries[0].sender, proc("P2"));
  EXPECT_EQ(chain->entries[1].rank, 1);
  EXPECT_EQ(chain->entries[1].sender, proc("P3"));
  // Deadlines ascend along the chain... rank 0's deadline is the static bus
  // delivery [5.6, 6.1].
  EXPECT_DOUBLE_EQ(chain->entries[0].deadline, 6.1);
  EXPECT_LE(chain->entries[0].send_date, chain->entries[1].send_date);
}

TEST_F(TimeoutsTest, NoChainWhenProducerIsLocal) {
  // E's main replica on P2 has B locally (B main on P2): no watcher.
  EXPECT_EQ(timeouts_.chain(dep("B->E"), proc("P2")), nullptr);
  // I is on P1 and P2; A on P1 and P2: no I->A chains at all.
  EXPECT_EQ(timeouts_.chain(dep("I->A"), proc("P1")), nullptr);
  EXPECT_EQ(timeouts_.chain(dep("I->A"), proc("P2")), nullptr);
}

TEST_F(TimeoutsTest, BackupWatchesOnlyEarlierRanks) {
  // B's backup on P3 watches only the main (rank 0).
  const TimeoutChain* chain = timeouts_.chain(dep("B->E"), proc("P3"));
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->entries.size(), 1u);
  EXPECT_EQ(chain->entries[0].sender, proc("P2"));
}

TEST_F(TimeoutsTest, SendDateRecurrence) {
  // d_0 = main completion; d_1 >= max(backup completion, d_0 + bound).
  const DependencyId b_e = dep("B->E");
  const Time d0 = timeouts_.send_date(b_e, 0);
  const Time d1 = timeouts_.send_date(b_e, 1);
  EXPECT_DOUBLE_EQ(d0, 4.5);  // B main ends at 4.5 on P2
  EXPECT_GE(d1, 5.0);         // B backup ends at 5 on P3
  EXPECT_GE(d1, d0 + 0.5);    // plus the transfer bound
  EXPECT_TRUE(is_infinite(timeouts_.send_date(b_e, 2)));
  EXPECT_TRUE(is_infinite(timeouts_.send_date(b_e, -1)));
}

TEST_F(TimeoutsTest, DeadlinesNeverPrecedeStaticArrivals) {
  // The contention refinement: no deadline may fire before the statically
  // scheduled delivery it guards (otherwise failure-free runs would raise
  // spurious failure suspicions).
  for (const TimeoutChain& chain : timeouts_.chains()) {
    if (chain.entries.empty()) continue;
    Time arrival = kInfinite;
    for (const ScheduledComm* comm : schedule_.comms_of(chain.dep)) {
      for (const CommSegment& seg : comm->segments) {
        if (ex_.problem.architecture->link(seg.link)
                .connects(chain.receiver)) {
          arrival = std::min(arrival, seg.end);
        }
      }
    }
    if (!is_infinite(arrival)) {
      EXPECT_GE(chain.entries[0].deadline, arrival);
    }
  }
}

TEST(TimeoutsP2P, BackupDeadlineWaitsForCertificate) {
  // On the point-to-point example the main serves consumers one at a time;
  // a backup's watch deadline must cover the LAST consumer delivery (or the
  // explicit liveness send), not the first observable one.
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const RoutingTable routing(*ex.problem.architecture);
  const TimeoutTable timeouts(schedule, routing);

  for (const TimeoutChain& chain : timeouts.chains()) {
    const Dependency& d = ex.problem.algorithm->dependency(chain.dep);
    const ScheduledOperation* local =
        schedule.replica_on(d.src, chain.receiver);
    if (local == nullptr || chain.entries.empty()) continue;  // consumer
    // Backup receiver: deadline >= every consumer delivery of the dep.
    for (const ScheduledComm* comm : schedule.comms_of(chain.dep)) {
      if (comm->liveness) continue;
      EXPECT_GE(chain.entries[0].deadline, comm->segments.back().end)
          << d.name;
    }
  }
}

}  // namespace
}  // namespace ftsched
