// Behavioural tests of the heuristics beyond the paper-example anchors:
// feasibility errors, K = 0 degeneration, determinism, deadlines, liveness
// sends, and the intra-processor communication rules.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(Heuristics, InsufficientProcessorsReported) {
  OwnedProblem ex = workload::paper_example1();
  ex.problem.failures_to_tolerate = 3;  // only 3 processors exist
  const auto result = schedule_solution1(ex.problem);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, Error::Code::kInsufficientRedundancy);
}

TEST(Heuristics, RestrictedOperationReported) {
  // I and O run on P1/P2 only: K = 2 is infeasible even with 3 processors.
  OwnedProblem ex = workload::paper_example1();
  ex.problem.failures_to_tolerate = 2;
  const auto result = schedule_solution1(ex.problem);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, Error::Code::kInsufficientRedundancy);
  EXPECT_NE(result.error().message.find("I"), std::string::npos);
}

TEST(Heuristics, DeadlineViolationReported) {
  OwnedProblem ex = workload::paper_example1();
  ex.problem.deadline = 5.0;  // solution 1 needs 9.4
  const auto result = schedule_solution1(ex.problem);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, Error::Code::kDeadlineMissed);

  ex.problem.deadline = 9.4 + 1e-6;
  EXPECT_TRUE(schedule_solution1(ex.problem).has_value());
}

TEST(Heuristics, SolutionsDegenerateToBaselineAtKZero) {
  OwnedProblem ex = workload::paper_example1();
  ex.problem.failures_to_tolerate = 0;
  const Schedule base = schedule_base(ex.problem).value();
  const Schedule s1 = schedule_solution1(ex.problem).value();
  const Schedule s2 = schedule_solution2(ex.problem).value();
  EXPECT_DOUBLE_EQ(s1.makespan(), base.makespan());
  EXPECT_DOUBLE_EQ(s2.makespan(), base.makespan());
  // Identical placements, operation by operation.
  for (const Operation& op : ex.problem.algorithm->operations()) {
    EXPECT_EQ(s1.main(op.id)->processor, base.main(op.id)->processor);
    EXPECT_EQ(s2.main(op.id)->processor, base.main(op.id)->processor);
  }
}

TEST(Heuristics, BaseIgnoresK) {
  OwnedProblem ex = workload::paper_example1();
  ex.problem.failures_to_tolerate = 1;
  const Schedule schedule = schedule_base(ex.problem).value();
  for (const Operation& op : ex.problem.algorithm->operations()) {
    EXPECT_EQ(schedule.replicas(op.id).size(), 1u);
  }
}

TEST(Heuristics, Deterministic) {
  const OwnedProblem ex1 = workload::paper_example1();
  const OwnedProblem ex2 = workload::paper_example1();
  const Schedule a = schedule_solution1(ex1.problem).value();
  const Schedule b = schedule_solution1(ex2.problem).value();
  ASSERT_EQ(a.operations().size(), b.operations().size());
  for (std::size_t i = 0; i < a.operations().size(); ++i) {
    EXPECT_EQ(a.operations()[i].processor, b.operations()[i].processor);
    EXPECT_DOUBLE_EQ(a.operations()[i].start, b.operations()[i].start);
  }
}

TEST(Heuristics, Solution1OnlyMainSendsActively) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  for (const ScheduledComm& comm : schedule.comms()) {
    if (comm.active) {
      EXPECT_EQ(comm.sender_rank, 0);
    } else {
      EXPECT_GT(comm.sender_rank, 0);
    }
  }
}

TEST(Heuristics, Solution1MinimalMessagesOnBus) {
  // §6.4: each dependency leads to at most K+1 inter-processor comms; on a
  // bus with broadcast, at most ONE active transfer per dependency.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  for (const Dependency& dep : ex.problem.algorithm->dependencies()) {
    EXPECT_LE(schedule.comms_of(dep.id).size(), 1u) << dep.name;
  }
}

TEST(Heuristics, Solution1LivenessOnlyOffBus) {
  // On the bus example every backup observes the consumer broadcast, so no
  // liveness transfers exist; on the point-to-point example they must.
  const OwnedProblem bus = workload::paper_example1();
  const Schedule on_bus = schedule_solution1(bus.problem).value();
  for (const ScheduledComm& comm : on_bus.comms()) {
    EXPECT_FALSE(comm.liveness);
  }
  const OwnedProblem p2p = workload::paper_example2();
  const Schedule on_p2p = schedule_solution1(p2p.problem).value();
  bool any_liveness = false;
  for (const ScheduledComm& comm : on_p2p.comms()) {
    any_liveness |= comm.liveness;
  }
  EXPECT_TRUE(any_liveness);
  EXPECT_TRUE(validate(on_p2p).empty());
}

TEST(Heuristics, Solution2IntraProcessorRule) {
  // §7.1: if a replica of the producer lives on the consumer's processor,
  // NO inter-processor transfer targets that consumer.
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  for (const ScheduledComm& comm : schedule.comms()) {
    const Dependency& dep = ex.problem.algorithm->dependency(comm.dep);
    EXPECT_EQ(schedule.replica_on(dep.src, comm.to), nullptr)
        << dep.name << " sent to a processor holding a producer replica";
  }
}

TEST(Heuristics, Solution2EveryReplicaSends) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  bool backup_sent = false;
  for (const ScheduledComm& comm : schedule.comms()) {
    backup_sent |= comm.sender_rank > 0;
  }
  EXPECT_TRUE(backup_sent);
}

TEST(Heuristics, DispatchMatchesDirectCalls) {
  const OwnedProblem ex = workload::paper_example1();
  EXPECT_DOUBLE_EQ(schedule(ex.problem, HeuristicKind::kBase)->makespan(),
                   schedule_base(ex.problem)->makespan());
  EXPECT_DOUBLE_EQ(
      schedule(ex.problem, HeuristicKind::kSolution1)->makespan(),
      schedule_solution1(ex.problem)->makespan());
  EXPECT_DOUBLE_EQ(
      schedule(ex.problem, HeuristicKind::kSolution2)->makespan(),
      schedule_solution2(ex.problem)->makespan());
}

TEST(Heuristics, SuccessorPenaltyAblation) {
  // Disabling the successor-placement penalty lets the baseline strand the
  // last computation on P3 where the output cannot run (makespan 9.6
  // instead of 8.8) — the ablation DESIGN.md documents.
  const OwnedProblem ex = workload::paper_example1();
  SchedulerOptions no_penalty;
  no_penalty.successor_placement_penalty = false;
  const Schedule with = schedule_base(ex.problem).value();
  const Schedule without = schedule_base(ex.problem, no_penalty).value();
  EXPECT_DOUBLE_EQ(with.makespan(), 8.8);
  EXPECT_DOUBLE_EQ(without.makespan(), 9.6);
}

TEST(Heuristics, MemInputsAreDeliveredToAllReplicas) {
  // A control loop with a mem: its input dependency is non-precedence but
  // must still reach every mem replica (validated by the validator).
  workload::RandomProblemParams params;
  params.dag.operations = 6;
  params.processors = 3;
  params.failures_to_tolerate = 1;
  params.arch_kind = workload::ArchKind::kBus;
  OwnedProblem ex = workload::random_problem(params);

  // Splice a mem feedback loop into the algorithm graph.
  auto algorithm = std::make_unique<AlgorithmGraph>();
  const OperationId in = algorithm->add_operation("in",
                                                  OperationKind::kExtioIn);
  const OperationId state =
      algorithm->add_operation("state", OperationKind::kMem);
  const OperationId law = algorithm->add_operation("law");
  const OperationId out =
      algorithm->add_operation("out", OperationKind::kExtioOut);
  algorithm->add_dependency(in, law);
  algorithm->add_dependency(state, law);
  algorithm->add_dependency(law, state);
  algorithm->add_dependency(law, out);

  auto arch = std::make_unique<ArchitectureGraph>(
      workload::make_architecture(workload::ArchKind::kBus, 3));
  auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
  auto comm = std::make_unique<CommTable>(*algorithm, *arch);
  for (const Operation& op : algorithm->operations()) {
    exec->set_uniform(op.id, 1.0);
  }
  for (const Dependency& dep : algorithm->dependencies()) {
    comm->set_uniform(dep.id, 0.5);
  }
  OwnedProblem owned = workload::assemble(
      std::move(algorithm), std::move(arch), std::move(exec),
      std::move(comm), 1);

  for (const HeuristicKind kind :
       {HeuristicKind::kSolution1, HeuristicKind::kSolution2}) {
    const auto result = ftsched::schedule(owned.problem, kind);
    ASSERT_TRUE(result.has_value()) << result.error().message;
    EXPECT_TRUE(validate(result.value()).empty()) << to_string(kind);
  }
}

}  // namespace
}  // namespace ftsched
