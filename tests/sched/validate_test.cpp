// The validator must accept every heuristic's output (covered elsewhere)
// and reject hand-built schedules violating each invariant.
#include <gtest/gtest.h>

#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest() : ex_(workload::paper_example1()) {}

  OperationId op(const char* name) const {
    return ex_.problem.algorithm->find_operation(name);
  }

  OwnedProblem ex_;
};

TEST_F(ValidateTest, ReportsMissingReplicas) {
  Schedule schedule(ex_.problem, HeuristicKind::kSolution1);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});  // K=1 needs 2
  const auto issues = validate(schedule);
  EXPECT_FALSE(issues.empty());
}

TEST_F(ValidateTest, ReportsDisallowedProcessor) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  // I cannot run on P3.
  schedule.add_operation({op("I"), 0, ProcessorId{2}, 0, 1});
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("disallowed") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, ReportsWrongDuration) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 2});  // WCET is 1
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("table says") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, ReportsProcessorOverlap) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});
  schedule.add_operation({op("A"), 0, ProcessorId{0}, 0.5, 2.5});
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("overlap") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, ReportsPrecedenceViolation) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});
  // A starts before I's value exists... on another processor with no comm.
  schedule.add_operation({op("A"), 0, ProcessorId{1}, 0, 2});
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("arrives") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, ReportsLinkOverlapAndBadComms) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});
  schedule.add_operation({op("A"), 0, ProcessorId{1}, 3, 5});

  const DependencyId i_a = DependencyId{0};
  const LinkId bus = ex_.problem.architecture->find_link("bus");
  ScheduledComm good;
  good.dep = i_a;
  good.from = ProcessorId{0};
  good.to = ProcessorId{1};
  good.segments = {CommSegment{bus, 1, 2.25}};
  schedule.add_comm(good);

  ScheduledComm overlapping = good;
  overlapping.segments = {CommSegment{bus, 2, 3.25}};
  schedule.add_comm(overlapping);

  bool overlap = false;
  for (const std::string& issue : validate(schedule)) {
    overlap |= issue.find("overlap") != std::string::npos;
  }
  EXPECT_TRUE(overlap);
}

TEST_F(ValidateTest, ReportsCommBeforeProducerEnds) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});
  schedule.add_operation({op("A"), 0, ProcessorId{1}, 2.25, 4.25});
  ScheduledComm early;
  early.dep = DependencyId{0};
  early.from = ProcessorId{0};
  early.to = ProcessorId{1};
  early.segments = {
      CommSegment{ex_.problem.architecture->find_link("bus"), 0.5, 1.75}};
  schedule.add_comm(early);
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("before its producer") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, ReportsUnknownSender) {
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});
  ScheduledComm phantom;
  phantom.dep = DependencyId{0};
  phantom.from = ProcessorId{2};  // no replica of I there
  phantom.to = ProcessorId{1};
  phantom.segments = {
      CommSegment{ex_.problem.architecture->find_link("bus"), 1, 2.25}};
  schedule.add_comm(phantom);
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("no such replica") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, ReportsDeadlineViolation) {
  ex_.problem.deadline = 0.5;
  Schedule schedule(ex_.problem, HeuristicKind::kBase);
  schedule.add_operation({op("I"), 0, ProcessorId{0}, 0, 1});
  bool found = false;
  for (const std::string& issue : validate(schedule)) {
    found |= issue.find("deadline") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidateTest, MultiHopRouteAccepted) {
  // Chain P1-P2-P3: a relayed comm must validate hop by hop.
  const OwnedProblem ex2 = workload::paper_example2();
  (void)ex2;
  OwnedProblem chain_ex = [] {
    auto algorithm = workload::paper_algorithm();
    auto arch = std::make_unique<ArchitectureGraph>();
    const ProcessorId p1 = arch->add_processor("P1");
    const ProcessorId p2 = arch->add_processor("P2");
    const ProcessorId p3 = arch->add_processor("P3");
    arch->add_link("L1.2", p1, p2);
    arch->add_link("L2.3", p2, p3);
    auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
    auto comm = std::make_unique<CommTable>(*algorithm, *arch);
    for (const Operation& op : algorithm->operations()) {
      exec->set_uniform(op.id, 1.0);
    }
    for (const Dependency& dep : algorithm->dependencies()) {
      comm->set_uniform(dep.id, 0.5);
    }
    return workload::assemble(std::move(algorithm), std::move(arch),
                              std::move(exec), std::move(comm), 0);
  }();

  Schedule schedule(chain_ex.problem, HeuristicKind::kBase);
  const AlgorithmGraph& graph = *chain_ex.problem.algorithm;
  schedule.add_operation({graph.find_operation("I"), 0, ProcessorId{0}, 0, 1});
  // A on P3, fed by a two-hop comm through P2.
  ScheduledComm relayed;
  relayed.dep = DependencyId{0};
  relayed.from = ProcessorId{0};
  relayed.to = ProcessorId{2};
  relayed.segments = {CommSegment{LinkId{0}, 1, 1.5},
                      CommSegment{LinkId{1}, 1.5, 2}};
  schedule.add_comm(relayed);
  schedule.add_operation({graph.find_operation("A"), 0, ProcessorId{2}, 2, 3});

  for (const std::string& issue : validate(schedule)) {
    // Only the missing replicas of B..O should be reported; nothing about
    // routes or precedence.
    EXPECT_EQ(issue.find("route"), std::string::npos) << issue;
    EXPECT_EQ(issue.find("arrives"), std::string::npos) << issue;
  }
}

}  // namespace
}  // namespace ftsched
