#include "sched/gantt.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(Gantt, TextListingContainsEveryResource) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const std::string text = to_text(schedule);
  EXPECT_NE(text.find("P1"), std::string::npos);
  EXPECT_NE(text.find("P2"), std::string::npos);
  EXPECT_NE(text.find("P3"), std::string::npos);
  EXPECT_NE(text.find("bus"), std::string::npos);
  EXPECT_NE(text.find("makespan = 9.4"), std::string::npos);
  // Replica annotations name:rank[start,end].
  EXPECT_NE(text.find("I:0[0,1]"), std::string::npos);
}

TEST(Gantt, BarChartScalesToColumns) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const std::string chart = to_gantt(schedule, 60);
  // One row per processor + link + axis.
  std::size_t lines = 0;
  for (char c : chart) lines += c == '\n';
  EXPECT_EQ(lines, 3u + 1u + 1u);
  EXPECT_NE(chart.find("t=9.4"), std::string::npos);
  // Main replicas are starred.
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(Gantt, EmptyScheduleFallsBack) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule empty(ex.problem, HeuristicKind::kBase);
  EXPECT_NE(to_gantt(empty).find("makespan = 0"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
