#include "sched/pressure.hpp"

#include <gtest/gtest.h>

#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(Pressure, OptimisticTimingUsesMinWcet) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const DagTiming timing = optimistic_timing(ex.problem);
  EXPECT_DOUBLE_EQ(timing.critical_path, 7.0);
}

TEST(Pressure, SigmaMeasuresCriticalPathLengthening) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const DagTiming timing = optimistic_timing(ex.problem);
  const OperationId b = ex.problem.algorithm->find_operation("B");
  // B at its optimistic earliest (start 3 with duration 1.5) lies exactly on
  // the critical path: sigma = 3 + 1.5 + tail(2.5) - 7 = 0.
  EXPECT_DOUBLE_EQ(schedule_pressure(timing, b, 3.0, 1.5), 0.0);
  // Delaying B by 1 or using a slower processor lengthens the path as much.
  EXPECT_DOUBLE_EQ(schedule_pressure(timing, b, 4.0, 1.5), 1.0);
  EXPECT_DOUBLE_EQ(schedule_pressure(timing, b, 3.0, 3.0), 1.5);
}

TEST(Pressure, ThrowsWhenOperationNowhereAllowed) {
  const workload::OwnedProblem ex = workload::paper_example1();
  AlgorithmGraph graph;
  graph.add_operation("orphan");
  ExecTable exec(graph, *ex.architecture);
  CommTable comm(graph, *ex.architecture);
  Problem problem;
  problem.algorithm = &graph;
  problem.architecture = ex.architecture.get();
  problem.exec = &exec;
  problem.comm = &comm;
  EXPECT_THROW(optimistic_timing(problem), std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
