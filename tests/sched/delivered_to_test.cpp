// delivered_to bookkeeping of committed transfers: every processor that
// observes a value is recorded exactly once. Consecutive segments of a
// relayed route share their relay processor (and on a bus every segment
// shares all endpoints), which used to push duplicate entries — wrong
// input for anything that counts deliveries or fans out per observer.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

/// A -> B with A pinned to P1 and B pinned to P3 on the chain P1 - P2 - P3:
/// the single transfer must relay through P2 (two segments).
workload::OwnedProblem relay_problem() {
  auto algorithm = std::make_unique<AlgorithmGraph>();
  const OperationId a = algorithm->add_operation("A");
  const OperationId b = algorithm->add_operation("B");
  algorithm->add_dependency(a, b, "A->B");

  auto arch = std::make_unique<ArchitectureGraph>();
  const ProcessorId p1 = arch->add_processor("P1");
  const ProcessorId p2 = arch->add_processor("P2");
  const ProcessorId p3 = arch->add_processor("P3");
  arch->add_link("L1.2", p1, p2);
  arch->add_link("L2.3", p2, p3);

  auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
  exec->set(a, p1, 1.0);
  exec->set(b, p3, 1.0);
  auto comm = std::make_unique<CommTable>(*algorithm, *arch);
  comm->set_uniform(algorithm->dependencies().front().id, 0.5);

  return workload::assemble(std::move(algorithm), std::move(arch),
                            std::move(exec), std::move(comm), /*k=*/0);
}

TEST(DeliveredTo, RelayedTransferRecordsEachObserverOnce) {
  const workload::OwnedProblem ex = relay_problem();
  const Expected<Schedule> result =
      schedule(ex.problem, HeuristicKind::kBase);
  ASSERT_TRUE(result.has_value());

  const DependencyId dep = ex.problem.algorithm->dependencies().front().id;
  const auto comms = result.value().comms_of(dep);
  ASSERT_EQ(comms.size(), 1u);
  const ScheduledComm& comm = *comms.front();
  ASSERT_EQ(comm.segments.size(), 2u) << "expected a relayed route";

  // P2 terminates segment 1 and originates segment 2; it must still appear
  // once. All three chain processors observe the value.
  std::vector<ProcessorId> sorted = comm.delivered_to;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate delivered_to entries";
  EXPECT_EQ(comm.delivered_to.size(), 3u);
}

TEST(DeliveredTo, BusBroadcastRecordsEachEndpointOnce) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Expected<Schedule> result = schedule_solution1(ex.problem);
  ASSERT_TRUE(result.has_value());
  for (const ScheduledComm& comm : result.value().comms()) {
    if (!comm.active || comm.segments.empty()) continue;
    std::vector<ProcessorId> sorted = comm.delivered_to;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate delivered_to entries in a bus broadcast";
  }
}

}  // namespace
}  // namespace ftsched
