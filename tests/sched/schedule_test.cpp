#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(Schedule, ReplicaBookkeeping) {
  const OwnedProblem ex = workload::paper_example1();
  Schedule schedule(ex.problem, HeuristicKind::kSolution1);
  const OperationId a = ex.problem.algorithm->find_operation("A");
  const ProcessorId p1 = ProcessorId{0};
  const ProcessorId p2 = ProcessorId{1};

  schedule.add_operation({a, 0, p1, 1, 3});
  schedule.add_operation({a, 1, p2, 1, 3});

  ASSERT_EQ(schedule.replicas(a).size(), 2u);
  EXPECT_TRUE(schedule.is_scheduled(a));
  EXPECT_EQ(schedule.main(a)->processor, p1);
  EXPECT_TRUE(schedule.main(a)->is_main());
  EXPECT_EQ(schedule.replica_on(a, p2)->rank, 1);
  EXPECT_EQ(schedule.replica_on(a, ProcessorId{2}), nullptr);
  EXPECT_DOUBLE_EQ(schedule.makespan(), 3.0);
}

TEST(Schedule, RejectsRankGapsAndDuplicateProcessors) {
  const OwnedProblem ex = workload::paper_example1();
  Schedule schedule(ex.problem, HeuristicKind::kSolution1);
  const OperationId a = ex.problem.algorithm->find_operation("A");
  schedule.add_operation({a, 0, ProcessorId{0}, 1, 3});
  // Rank must be consecutive.
  EXPECT_THROW(schedule.add_operation({a, 2, ProcessorId{1}, 1, 3}),
               std::invalid_argument);
  // Same processor twice.
  EXPECT_THROW(schedule.add_operation({a, 1, ProcessorId{0}, 4, 6}),
               std::invalid_argument);
}

TEST(Schedule, OperationsOnSortsByStart) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  for (const Processor& proc : ex.problem.architecture->processors()) {
    const auto ops = schedule.operations_on(proc.id);
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_LE(ops[i - 1]->start, ops[i]->start);
    }
  }
}

TEST(Schedule, SegmentsOnSortsByStart) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const LinkId bus = ex.problem.architecture->find_link("bus");
  const auto segments = schedule.segments_on(bus);
  EXPECT_FALSE(segments.empty());
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_LE(segments[i - 1].second->start, segments[i].second->start);
  }
}

TEST(Schedule, ActiveCommCountExcludesPassive) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  std::size_t active = 0;
  std::size_t passive = 0;
  for (const ScheduledComm& comm : schedule.comms()) {
    (comm.active ? active : passive)++;
  }
  EXPECT_EQ(schedule.active_comm_count(), active);
  EXPECT_GT(passive, 0u);  // solution 1 always records backup OpComms
}

TEST(Schedule, KindNames) {
  EXPECT_EQ(to_string(HeuristicKind::kBase), "base (non fault-tolerant)");
  EXPECT_NE(to_string(HeuristicKind::kSolution1).find("solution 1"),
            std::string::npos);
  EXPECT_NE(to_string(HeuristicKind::kSolution2).find("solution 2"),
            std::string::npos);
}

TEST(Schedule, CommArrivalHelper) {
  ScheduledComm comm;
  EXPECT_TRUE(is_infinite(comm.arrival()));
  comm.segments.push_back(CommSegment{LinkId{0}, 1.0, 2.0});
  comm.segments.push_back(CommSegment{LinkId{1}, 2.0, 3.5});
  EXPECT_DOUBLE_EQ(comm.arrival(), 3.5);
}

}  // namespace
}  // namespace ftsched
