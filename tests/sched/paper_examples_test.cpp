// Reproduction of the paper's worked examples (§6.5-§6.6, §7.3-§7.4).
// The prose checkpoints of §6.5 (completion dates of B's candidate
// placements, the step-by-step assignments of Figures 14-16, the final
// makespan 9.4 of Figure 17) pin the solution-1 heuristic exactly;
// EXPERIMENTS.md records where our deterministic tie-breaks make the
// baseline differ from the figures we cannot read (8.8 vs 8.6, 8.3 vs 8.0).
#include <gtest/gtest.h>

#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(PaperExample1, Solution1MatchesFigure17) {
  const OwnedProblem ex = workload::paper_example1();
  const Expected<Schedule> result = schedule_solution1(ex.problem);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const Schedule& schedule = result.value();
  SCOPED_TRACE(to_text(schedule));
  EXPECT_TRUE(validate(schedule).empty());
  EXPECT_DOUBLE_EQ(schedule.makespan(), 9.4);

  const AlgorithmGraph& graph = *ex.problem.algorithm;
  const ArchitectureGraph& arch = *ex.problem.architecture;
  const ProcessorId p1 = arch.find_processor("P1");
  const ProcessorId p2 = arch.find_processor("P2");
  const ProcessorId p3 = arch.find_processor("P3");

  // Figure 15's prose: B's main replica on P2 completes at 4.5; its backup
  // on P3 completes at 5 (it would have completed at 6 on P1).
  const OperationId b = graph.find_operation("B");
  const ScheduledOperation* b_main = schedule.main(b);
  ASSERT_NE(b_main, nullptr);
  EXPECT_EQ(b_main->processor, p2);
  EXPECT_DOUBLE_EQ(b_main->end, 4.5);
  const ScheduledOperation* b_backup = schedule.replica_on(b, p3);
  ASSERT_NE(b_backup, nullptr);
  EXPECT_DOUBLE_EQ(b_backup->end, 5.0);

  // Figure 16: C on P1 (main) and P3.
  const OperationId c = graph.find_operation("C");
  ASSERT_NE(schedule.main(c), nullptr);
  EXPECT_EQ(schedule.main(c)->processor, p1);
  EXPECT_NE(schedule.replica_on(c, p3), nullptr);

  // Every operation is duplicated (K = 1).
  for (const Operation& op : graph.operations()) {
    EXPECT_EQ(schedule.replicas(op.id).size(), 2u) << op.name;
  }
}

TEST(PaperExample1, BaselineAndOverhead) {
  const OwnedProblem ex = workload::paper_example1();
  const Expected<Schedule> ft = schedule_solution1(ex.problem);
  const Expected<Schedule> base = schedule_base(ex.problem);
  ASSERT_TRUE(ft.has_value());
  ASSERT_TRUE(base.has_value());
  SCOPED_TRACE(to_text(base.value()));
  EXPECT_TRUE(validate(base.value()).empty());
  // Paper: 9.4 - 8.6 = 0.8. Our deterministic baseline reaches 8.8
  // (overhead 0.6): same sign, same order of magnitude.
  EXPECT_DOUBLE_EQ(base->makespan(), 8.8);
  EXPECT_NEAR(overhead(ft.value(), base.value()), 0.6, 1e-9);
  EXPECT_GT(overhead(ft.value(), base.value()), 0.0);
}

TEST(PaperExample2, Solution2MatchesFigure22Shape) {
  const OwnedProblem ex = workload::paper_example2();
  const Expected<Schedule> result = schedule_solution2(ex.problem);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const Schedule& schedule = result.value();
  SCOPED_TRACE(to_text(schedule));
  EXPECT_TRUE(validate(schedule).empty());
  // Paper's Figure 22 reads 8.9; our deterministic tie-breaks give 9.4.
  EXPECT_DOUBLE_EQ(schedule.makespan(), 9.4);

  for (const Operation& op : ex.problem.algorithm->operations()) {
    EXPECT_EQ(schedule.replicas(op.id).size(), 2u) << op.name;
  }
  // Solution 2 never schedules passive comms.
  for (const ScheduledComm& comm : schedule.comms()) {
    EXPECT_TRUE(comm.active);
  }
}

TEST(PaperExample2, BaselineAndOverhead) {
  const OwnedProblem ex = workload::paper_example2();
  const Expected<Schedule> ft = schedule_solution2(ex.problem);
  const Expected<Schedule> base = schedule_base(ex.problem);
  ASSERT_TRUE(ft.has_value());
  ASSERT_TRUE(base.has_value());
  SCOPED_TRACE(to_text(base.value()));
  EXPECT_TRUE(validate(base.value()).empty());
  // Paper: 8.9 - 8.0 = 0.9; ours: 9.4 - 8.3 = 1.1.
  EXPECT_DOUBLE_EQ(base->makespan(), 8.3);
  EXPECT_GT(overhead(ft.value(), base.value()), 0.0);
}

}  // namespace
}  // namespace ftsched
