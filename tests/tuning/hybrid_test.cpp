#include "tuning/hybrid.hpp"

#include <gtest/gtest.h>

#include "sched/validate.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(Hybrid, AllPassivePolicyEqualsSolution1) {
  const OwnedProblem ex = workload::paper_example1();
  SchedulerOptions options;
  options.active_comm_deps.assign(ex.algorithm->dependency_count(), false);
  const Schedule hybrid =
      schedule_hybrid_with_policy(ex.problem, options).value();
  const Schedule sol1 = schedule_solution1(ex.problem).value();
  EXPECT_DOUBLE_EQ(hybrid.makespan(), sol1.makespan());
  EXPECT_EQ(hybrid.active_comm_dep_count(), 0u);
  EXPECT_EQ(hybrid.comms().size(), sol1.comms().size());
}

TEST(Hybrid, AllActivePolicyMatchesSolution2Comms) {
  const OwnedProblem ex = workload::paper_example2();
  SchedulerOptions options;
  options.active_comm_deps.assign(ex.algorithm->dependency_count(), true);
  const Schedule hybrid =
      schedule_hybrid_with_policy(ex.problem, options).value();
  const Schedule sol2 = schedule_solution2(ex.problem).value();
  EXPECT_DOUBLE_EQ(hybrid.makespan(), sol2.makespan());
  EXPECT_EQ(hybrid.active_comm_dep_count(),
            ex.algorithm->dependency_count());
  // No passive machinery anywhere.
  for (const ScheduledComm& comm : hybrid.comms()) {
    EXPECT_TRUE(comm.active);
    EXPECT_FALSE(comm.liveness);
  }
}

TEST(Hybrid, MixedPolicyValidatesAndMasksFailures) {
  const OwnedProblem ex = workload::paper_example2();
  SchedulerOptions options;
  options.active_comm_deps.assign(ex.algorithm->dependency_count(), false);
  // Flip the two dependencies feeding E's longest inputs.
  options.active_comm_deps[4] = true;  // B->E
  options.active_comm_deps[6] = true;  // D->E
  const Schedule hybrid =
      schedule_hybrid_with_policy(ex.problem, options).value();
  EXPECT_TRUE(validate(hybrid).empty());
  EXPECT_EQ(hybrid.active_comm_dep_count(), 2u);

  const Simulator simulator(hybrid);
  for (const Processor& proc : ex.problem.architecture->processors()) {
    EXPECT_TRUE(simulator.run(FailureScenario::dead_from_start({proc.id}))
                    .all_outputs_produced)
        << proc.name;
    for (const double fraction : {0.2, 0.5, 0.8}) {
      EXPECT_TRUE(
          simulator
              .run(FailureScenario::crash(proc.id,
                                          hybrid.makespan() * fraction))
              .all_outputs_produced)
          << proc.name << " at " << fraction;
    }
  }
}

TEST(Hybrid, AutomaticSearchImprovesTransientWithinBudget) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule sol1 = schedule_solution1(ex.problem).value();
  const TransientReport sol1_report = analyze_transient(sol1);

  HybridOptions options;
  options.max_overhead_factor = 1.10;
  const Expected<HybridResult> result = schedule_hybrid(ex.problem, options);
  ASSERT_TRUE(result.has_value()) << result.error().message;

  EXPECT_TRUE(validate(result->schedule).empty());
  // Budget respected.
  EXPECT_LE(result->schedule.makespan(),
            sol1.makespan() * 1.10 + kTimeEpsilon);
  // Transient never worse than pure solution 1, and if anything was
  // flipped it is strictly better.
  EXPECT_LE(result->transient.worst_response,
            sol1_report.worst_response + kTimeEpsilon);
  if (!result->flipped.empty()) {
    EXPECT_LT(result->transient.worst_response,
              sol1_report.worst_response);
    EXPECT_EQ(result->schedule.active_comm_dep_count(),
              result->flipped.size());
  }
}

TEST(Hybrid, SearchStillMasksEverySingleFailure) {
  workload::RandomProblemParams params;
  params.dag.operations = 12;
  params.arch_kind = workload::ArchKind::kFullyConnected;
  params.processors = 4;
  params.failures_to_tolerate = 1;
  params.seed = 6;
  const OwnedProblem ex = workload::random_problem(params);
  const Expected<HybridResult> result = schedule_hybrid(ex.problem);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(is_infinite(result->transient.worst_response));

  const Simulator simulator(result->schedule);
  for (const auto& subset : failure_subsets(4, 1)) {
    EXPECT_TRUE(simulator.run(FailureScenario::dead_from_start(subset))
                    .all_outputs_produced);
  }
}

TEST(Hybrid, InfeasibleProblemPropagatesError) {
  OwnedProblem ex = workload::paper_example1();
  ex.problem.failures_to_tolerate = 3;
  const Expected<HybridResult> result = schedule_hybrid(ex.problem);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, Error::Code::kInsufficientRedundancy);
}

}  // namespace
}  // namespace ftsched
