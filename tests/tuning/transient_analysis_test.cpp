#include "tuning/transient_analysis.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(TransientAnalysis, Example1Solution1) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const TransientReport report = analyze_transient(schedule);

  EXPECT_DOUBLE_EQ(report.nominal_response, 8.1);
  // Single failures never lose outputs (K = 1), so the worst case is
  // finite. Losing P2 (the busiest main host) from the start costs 10.3;
  // the exhaustive crash-instant sweep finds a slightly worse window (a
  // P1 crash just after it claimed the bus), 10.4.
  EXPECT_FALSE(is_infinite(report.worst_response));
  EXPECT_GE(report.worst_response, 10.3 - kTimeEpsilon);
  EXPECT_DOUBLE_EQ(report.worst_response, 10.4);
  EXPECT_TRUE(report.worst_victim.valid());
  EXPECT_GT(report.worst_timeouts, 0u);
  EXPECT_NEAR(report.worst_stretch(), 10.4 / 8.1, 1e-9);

  // The per-victim table covers every processor, each bounded by worst.
  ASSERT_EQ(report.worst_by_victim.size(), 3u);
  for (const Time response : report.worst_by_victim) {
    EXPECT_LE(response, report.worst_response + kTimeEpsilon);
    EXPECT_GE(response, report.nominal_response - kTimeEpsilon);
  }
}

TEST(TransientAnalysis, BoundsEverySampledCrash) {
  // Consistency: any concrete single crash the analysis did not literally
  // enumerate (random instants) stays within the reported worst case.
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const TransientReport report = analyze_transient(schedule);
  const Simulator simulator(schedule);
  for (const Processor& proc : ex.problem.architecture->processors()) {
    for (const double fraction : {0.13, 0.37, 0.61, 0.89}) {
      const IterationResult run = simulator.run(FailureScenario::crash(
          proc.id, schedule.makespan() * fraction));
      EXPECT_LE(run.response_time, report.worst_response + kTimeEpsilon)
          << proc.name << " at " << fraction;
    }
  }
}

TEST(TransientAnalysis, BaselineWorstIsInfinite) {
  // Without replication, some single failure always loses an output.
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  const TransientReport report = analyze_transient(schedule);
  EXPECT_TRUE(is_infinite(report.worst_response));
}

}  // namespace
}  // namespace ftsched
