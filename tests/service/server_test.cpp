// certifyd round trips: pipe-mode submit/status/shutdown, the plan-key
// cache answering a repeated isomorphic submission, streamed
// counterexample records, per-request deadlines, error handling on
// malformed requests, and the Unix-domain socket transport.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/problem_format.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::service {
namespace {

/// paper_example1 as an inline problem payload, JSON-escaped.
std::string inline_problem() {
  const workload::OwnedProblem ex = workload::paper_example1();
  return obs::json_string(io::write_problem(ex.problem));
}

std::vector<JsonValue> parse_records(const std::string& text) {
  std::vector<JsonValue> records;
  std::stringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto value = parse_json(line);
    EXPECT_TRUE(value.has_value()) << line;
    if (value.has_value()) records.push_back(std::move(value.value()));
  }
  return records;
}

const JsonValue* find_record(const std::vector<JsonValue>& records,
                             const std::string& type,
                             const std::string& id) {
  for (const JsonValue& record : records) {
    if (record.string_or("type", "") == type &&
        record.string_or("id", "") == id) {
      return &record;
    }
  }
  return nullptr;
}

TEST(CertifyService, SubmitMissThenIsomorphicHit) {
  const std::uint64_t hits_before =
      obs::MetricsRegistry::global().counter("service.cache_hits").value();

  CertifyService service(ServeOptions{});
  StringSink sink;
  const std::string problem = inline_problem();
  // Two textually identical submissions — the second must be served from
  // the plan-key cache.
  const std::string submit1 =
      R"({"type":"submit","id":"r1","problem_inline":)" + problem + "}";
  const std::string submit2 =
      R"({"type":"submit","id":"r2","problem_inline":)" + problem + "}";
  EXPECT_TRUE(service.handle_line(submit1, sink));
  EXPECT_TRUE(service.handle_line(submit2, sink));

  const auto records = parse_records(sink.text());
  const JsonValue* first = find_record(records, "result", "r1");
  const JsonValue* second = find_record(records, "result", "r2");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->string_or("cache", ""), "miss");
  EXPECT_EQ(second->string_or("cache", ""), "hit");
  EXPECT_TRUE(first->bool_or("certified", false));
  EXPECT_TRUE(second->bool_or("certified", false));
  EXPECT_EQ(first->string_or("plan_key", "a"),
            second->string_or("plan_key", "b"));
  EXPECT_EQ(first->number_or("branches", -1),
            second->number_or("branches", -2));

  EXPECT_EQ(service.stats().cache_misses, 1u);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  // The cache hit is visible in the service.* metrics of the obs registry.
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("service.cache_hits").value(),
      hits_before + 1);
}

TEST(CertifyService, RefutedSubmissionStreamsCounterexamples) {
  CertifyService service(ServeOptions{});
  StringSink sink;
  // The non-FT baseline against a K=1 claim: must refute with streamed
  // counterexample records preceding the result.
  const std::string submit =
      R"({"type":"submit","id":"x","heuristic":"base","claim_k":1,)"
      R"("problem_inline":)" +
      inline_problem() + "}";
  EXPECT_TRUE(service.handle_line(submit, sink));

  const auto records = parse_records(sink.text());
  const JsonValue* result = find_record(records, "result", "x");
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->bool_or("certified", true));
  EXPECT_GT(result->number_or("counterexamples", 0), 0);
  const JsonValue* counterexample = find_record(records, "counterexample", "x");
  ASSERT_NE(counterexample, nullptr);
  const JsonValue* branch = counterexample->find("branch");
  ASSERT_NE(branch, nullptr);
  EXPECT_TRUE(branch->is_object());
  // Progress records streamed during certification.
  EXPECT_NE(find_record(records, "progress", "x"), nullptr);
}

TEST(CertifyService, MalformedAndFailingRequestsAnswerErrors) {
  CertifyService service(ServeOptions{});
  StringSink sink;
  EXPECT_TRUE(service.handle_line("this is not json", sink));
  EXPECT_TRUE(service.handle_line(R"({"type":"conjure"})", sink));
  EXPECT_TRUE(service.handle_line(R"({"type":"submit","id":"a"})", sink));
  EXPECT_TRUE(service.handle_line(
      R"({"type":"submit","id":"b","problem":"/nonexistent.ft"})", sink));
  EXPECT_TRUE(service.handle_line(
      R"({"type":"submit","id":"c","heuristic":"quantum",)"
      R"("problem_inline":)" +
          inline_problem() + "}",
      sink));
  const auto records = parse_records(sink.text());
  std::size_t errors = 0;
  for (const JsonValue& record : records) {
    if (record.string_or("type", "") == "error") ++errors;
  }
  EXPECT_EQ(errors, 5u);
  EXPECT_EQ(service.stats().errors, 5u);
  // The service keeps serving after errors.
  EXPECT_TRUE(service.handle_line(R"({"type":"status","id":"s"})", sink));
}

TEST(CertifyService, ChainConstrainedSubmitLabelsItsCounterexamples) {
  CertifyService service(ServeOptions{});
  StringSink sink;
  // An impossibly tight chain on the certified solution: refuted, and
  // every streamed counterexample names the violated constraint.
  const std::string submit =
      R"({"type":"submit","id":"q","latency_constraints":)"
      R"([{"name":"tight","source":"A","sink":"E","bound":0.01}],)"
      R"("problem_inline":)" +
      inline_problem() + "}";
  EXPECT_TRUE(service.handle_line(submit, sink));

  const auto records = parse_records(sink.text());
  const JsonValue* result = find_record(records, "result", "q");
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->bool_or("certified", true));
  const JsonValue* counterexample = find_record(records, "counterexample", "q");
  ASSERT_NE(counterexample, nullptr);
  const JsonValue* branch = counterexample->find("branch");
  ASSERT_NE(branch, nullptr);
  const JsonValue* violated = branch->find("violated");
  ASSERT_NE(violated, nullptr);
  ASSERT_TRUE(violated->is_array());
  ASSERT_EQ(violated->items.size(), 1u);
  EXPECT_EQ(violated->items[0].string, "tight");

  // The constraints are part of the plan: the same problem without them
  // is a different plan key, not a cache hit against the refutation.
  StringSink plain_sink;
  const std::string plain =
      R"({"type":"submit","id":"p","problem_inline":)" + inline_problem() +
      "}";
  EXPECT_TRUE(service.handle_line(plain, plain_sink));
  const auto plain_records = parse_records(plain_sink.text());
  const JsonValue* plain_result = find_record(plain_records, "result", "p");
  ASSERT_NE(plain_result, nullptr);
  EXPECT_EQ(plain_result->string_or("cache", ""), "miss");
  EXPECT_TRUE(plain_result->bool_or("certified", false));
  EXPECT_NE(plain_result->string_or("plan_key", ""),
            result->string_or("plan_key", ""));
}

TEST(CertifyService, MalformedChainConstraintSubmitsAnswerErrors) {
  CertifyService service(ServeOptions{});
  StringSink sink;
  const std::string problem = inline_problem();
  const auto submit = [&](const char* id, const std::string& constraints) {
    EXPECT_TRUE(service.handle_line(
        std::string(R"({"type":"submit","id":")") + id +
            R"(","latency_constraints":)" + constraints +
            R"(,"problem_inline":)" + problem + "}",
        sink));
  };
  // Shape errors caught by the protocol parser...
  submit("a", R"([{"source":"A","sink":"E","bound":5}])");
  submit("b", R"([{"name":"c","source":"A","sink":"E"}])");
  submit("c", R"([{"name":"c","source":"A","sink":"E","bound":0}])");
  submit("d", R"(["not an object"])");
  // ...and semantic errors caught by the resolver against the schedule.
  submit("e", R"([{"name":"c","source":"Zeta","sink":"E","bound":5}])");
  submit("f", R"([{"name":"c","source":"A","sink":"E","bound":5},)"
              R"({"name":"c","source":"I","sink":"O","bound":9}])");

  const auto records = parse_records(sink.text());
  // Shape errors are refused by the request parser (no id yet); the
  // resolver's semantic errors answer under the request's own id. Either
  // way: an error record, never a result.
  std::size_t errors = 0;
  for (const JsonValue& record : records) {
    if (record.string_or("type", "") == "error") ++errors;
    EXPECT_NE(record.string_or("type", ""), "result");
  }
  EXPECT_EQ(errors, 6u);
  for (const char* id : {"e", "f"}) {
    EXPECT_NE(find_record(records, "error", id), nullptr) << id;
  }
  EXPECT_EQ(service.stats().errors, 6u);
  // The service keeps serving after every refusal.
  EXPECT_TRUE(service.handle_line(R"({"type":"status","id":"s"})", sink));
}

TEST(CertifyService, DeadlineCancelsAndSkipsCache) {
  CertifyService service(ServeOptions{});
  StringSink sink;
  // deadline_ms tiny but nonzero: the expiry hook fires before the first
  // task (steady_clock has already advanced by scheduling time).
  const std::string submit =
      R"({"type":"submit","id":"d","deadline_ms":1e-9,"problem_inline":)" +
      inline_problem() + "}";
  EXPECT_TRUE(service.handle_line(submit, sink));
  const auto records = parse_records(sink.text());
  const JsonValue* error = find_record(records, "error", "d");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->string_or("message", "").find("deadline"),
            std::string::npos);
  EXPECT_EQ(find_record(records, "result", "d"), nullptr);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
  // An abandoned run must not poison the cache: a re-submit without the
  // deadline is a miss, then completes.
  StringSink retry;
  const std::string resubmit =
      R"({"type":"submit","id":"d2","problem_inline":)" + inline_problem() +
      "}";
  EXPECT_TRUE(service.handle_line(resubmit, retry));
  const auto retry_records = parse_records(retry.text());
  const JsonValue* result = find_record(retry_records, "result", "d2");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("cache", ""), "miss");
}

TEST(ServeLines, PipeModeRoundTrip) {
  std::stringstream in;
  in << R"({"type":"submit","id":"p1","problem_inline":)" << inline_problem()
     << "}\n"
     << R"({"type":"status","id":"p2"})" << "\n"
     << R"({"type":"shutdown","id":"p3"})" << "\n"
     << R"({"type":"status","id":"never"})" << "\n";
  std::stringstream out;
  EXPECT_EQ(serve_lines(in, out, ServeOptions{}), 0);
  const auto records = parse_records(out.str());
  EXPECT_NE(find_record(records, "result", "p1"), nullptr);
  const JsonValue* status = find_record(records, "status", "p2");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->number_or("submits", -1), 1);
  EXPECT_NE(find_record(records, "bye", "p3"), nullptr);
  // Shutdown stops the loop: the trailing status is never answered.
  EXPECT_EQ(find_record(records, "status", "never"), nullptr);
}

TEST(ServeLines, StopFlagDrainsBeforeNextRequest) {
  // With the stop flag already set (SIGINT arrived), the loop exits
  // before reading a request.
  std::atomic<bool> stop{true};
  ServeOptions options;
  options.stop = &stop;
  std::stringstream in(R"({"type":"status","id":"s"})" "\n");
  std::stringstream out;
  EXPECT_EQ(serve_lines(in, out, options), 0);
  EXPECT_TRUE(out.str().empty());
}

/// Connects to a Unix socket, retrying while the listener comes up.
/// Returns -1 after ~2 s of refusals.
int connect_with_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

/// Reads records from an open connection until one of `type` with `id`
/// arrives (the connection stays open, so EOF is not the frame boundary).
JsonValue read_record(int fd, const std::string& type,
                      const std::string& id) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      auto value = parse_json(line);
      EXPECT_TRUE(value.has_value()) << line;
      if (value.has_value() && value.value().string_or("type", "") == type &&
          value.value().string_or("id", "") == id) {
        return std::move(value.value());
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return JsonValue{};
}

TEST(ServeSocket, UnixDomainSocketRoundTrip) {
  const std::string path =
      "/tmp/ftsched_certifyd_test_" + std::to_string(::getpid()) + ".sock";
  ServeOptions options;
  std::thread server([&] { serve_socket(path, options); });

  const int fd = connect_with_retry(path);
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  const std::string request =
      R"({"type":"submit","id":"u1","problem_inline":)" + inline_problem() +
      "}\n" + R"({"type":"shutdown","id":"u2"})" + "\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  const auto records = parse_records(response);
  const JsonValue* result = find_record(records, "result", "u1");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->bool_or("certified", false));
  EXPECT_NE(find_record(records, "bye", "u2"), nullptr);
}

TEST(ServeSocket, WorkerPoolServesConcurrentConnections) {
  const std::string path =
      "/tmp/ftsched_certifyd_pool_" + std::to_string(::getpid()) + ".sock";
  ServeOptions options;
  options.serve_threads = 3;
  std::thread server([&] { serve_socket(path, options); });

  // Three clients hold their connections open simultaneously — with a
  // single sequential worker this would deadlock below, because every
  // client only sends its submit once all three are connected.
  int fds[3];
  for (int& fd : fds) {
    fd = connect_with_retry(path);
    ASSERT_GE(fd, 0) << "could not connect to " << path;
  }

  // Three distinct plan keys, so the cache outcome is deterministic no
  // matter how the workers interleave: base differs by schedule, and the
  // third differs by response bound (part of the key) even if the two
  // solution heuristics happened to produce identical schedules.
  const std::string problem = inline_problem();
  const char* extras[3] = {R"("heuristic":"base")",
                           R"("heuristic":"solution1")",
                           R"("heuristic":"solution2","response_bound":1000)"};
  for (int c = 0; c < 3; ++c) {
    const std::string submit =
        std::string(R"({"type":"submit","id":"c)") + std::to_string(c) +
        R"(","claim_k":1,)" + extras[c] +
        R"(,"problem_inline":)" + problem + "}\n";
    ASSERT_EQ(::write(fds[c], submit.data(), submit.size()),
              static_cast<ssize_t>(submit.size()));
  }
  for (int c = 0; c < 3; ++c) {
    const JsonValue result =
        read_record(fds[c], "result", std::string("c") + std::to_string(c));
    ASSERT_TRUE(result.is_object()) << "client " << c;
    // base cannot mask K=1; both solutions certify.
    EXPECT_EQ(result.bool_or("certified", c == 0), c != 0);
    EXPECT_EQ(result.string_or("cache", ""), "miss");
    ::close(fds[c]);
  }

  // Counter deltas merge per completed request; results can be read a
  // moment before the writer's merge lands, so poll the status until all
  // three submits are visible. Totals must come out exact — merged
  // deltas, not interleaved per-field updates.
  const int fd = connect_with_retry(path);
  ASSERT_GE(fd, 0);
  JsonValue status;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::string ask_id = std::string("s") + std::to_string(attempt);
    const std::string ask =
        std::string(R"({"type":"status","id":")") + ask_id + "\"}\n";
    ASSERT_EQ(::write(fd, ask.data(), ask.size()),
              static_cast<ssize_t>(ask.size()));
    status = read_record(fd, "status", ask_id);
    ASSERT_TRUE(status.is_object());
    if (status.number_or("submits", 0) == 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(status.number_or("submits", -1), 3);
  EXPECT_EQ(status.number_or("cache_misses", -1), 3);
  EXPECT_EQ(status.number_or("cache_hits", -1), 0);
  EXPECT_EQ(status.number_or("errors", -1), 0);
  EXPECT_EQ(status.number_or("cache_entries", -1), 3);

  const std::string bye = R"({"type":"shutdown","id":"z"})" "\n";
  ASSERT_EQ(::write(fd, bye.data(), bye.size()),
            static_cast<ssize_t>(bye.size()));
  EXPECT_TRUE(read_record(fd, "bye", "z").is_object());
  ::close(fd);
  server.join();
}

}  // namespace
}  // namespace ftsched::service
