// Shard/merge protocol: any 1..8-way shard partition of a certification
// run merges to a certificate byte-identical to single-process certify(),
// for a certified schedule and for a refuted one (counterexamples cross
// the wire too); malformed streams — truncated, tampered, cancelled,
// incomplete — are clean Errors, never UB.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "campaign/certify.hpp"
#include "sched/heuristics.hpp"
#include "service/cache.hpp"
#include "service/shard.hpp"
#include "service/stream.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::service {
namespace {

using workload::OwnedProblem;

struct Fixture {
  // Heap-held: Schedule keeps a pointer to owned->problem, so the problem
  // must not relocate when the fixture moves.
  std::unique_ptr<OwnedProblem> owned;
  Schedule schedule;
  campaign::CertifySpec spec;

  static Fixture certified() {
    auto ex = std::make_unique<OwnedProblem>(workload::paper_example1());
    Schedule schedule = schedule_solution1(ex->problem).value();
    return Fixture{std::move(ex), std::move(schedule), {}};
  }

  static Fixture refuted() {
    // The non-FT baseline against a K=1 claim: counterexamples guaranteed.
    auto ex = std::make_unique<OwnedProblem>(workload::paper_example1());
    Schedule schedule = schedule_base(ex->problem).value();
    campaign::CertifySpec spec;
    spec.max_failures = 1;
    return Fixture{std::move(ex), std::move(schedule), spec};
  }

  [[nodiscard]] std::vector<std::string> shard_streams(
      std::size_t shards) const {
    std::vector<std::string> streams;
    for (std::size_t i = 0; i < shards; ++i) {
      StringSink sink;
      const StreamShardResult result = certify_stream(
          schedule, spec, campaign::CertifyShardSpec{i, shards}, sink);
      EXPECT_TRUE(result.completed);
      streams.push_back(sink.text());
    }
    return streams;
  }
};

void expect_partitions_merge(const Fixture& fixture) {
  const campaign::CertifyReport reference =
      campaign::certify(fixture.schedule, fixture.spec);
  const ArchitectureGraph& arch = *fixture.owned->problem.architecture;
  const std::string reference_json = reference.to_json(arch);

  for (std::size_t shards = 1; shards <= 8; ++shards) {
    const auto merged = merge_streams(fixture.schedule, fixture.spec,
                                      fixture.shard_streams(shards));
    ASSERT_TRUE(merged.has_value()) << merged.error().message;
    EXPECT_EQ(merged.value().to_json(arch), reference_json)
        << shards << "-way partition diverged";
    EXPECT_EQ(merged.value().certified, reference.certified);
  }
}

TEST(StreamMerge, AnyPartitionOfCertifiedRunMergesByteIdentical) {
  expect_partitions_merge(Fixture::certified());
}

TEST(StreamMerge, AnyPartitionOfRefutedRunMergesByteIdentical) {
  expect_partitions_merge(Fixture::refuted());
}

TEST(StreamMerge, StreamOrderDoesNotMatter) {
  const Fixture fixture = Fixture::certified();
  const ArchitectureGraph& arch = *fixture.owned->problem.architecture;
  const std::string reference_json =
      campaign::certify(fixture.schedule, fixture.spec).to_json(arch);
  std::vector<std::string> streams = fixture.shard_streams(3);
  std::swap(streams[0], streams[2]);
  const auto merged = merge_streams(fixture.schedule, fixture.spec, streams);
  ASSERT_TRUE(merged.has_value()) << merged.error().message;
  EXPECT_EQ(merged.value().to_json(arch), reference_json);
}

TEST(StreamMerge, CounterexamplesSurviveTheWire) {
  const Fixture fixture = Fixture::refuted();
  const campaign::CertifyReport reference =
      campaign::certify(fixture.schedule, fixture.spec);
  ASSERT_FALSE(reference.certified);
  ASSERT_FALSE(reference.counterexamples.empty());

  const auto merged = merge_streams(fixture.schedule, fixture.spec,
                                    fixture.shard_streams(4));
  ASSERT_TRUE(merged.has_value()) << merged.error().message;
  const campaign::CertifyReport& report = merged.value();
  ASSERT_EQ(report.counterexamples.size(), reference.counterexamples.size());
  for (std::size_t i = 0; i < report.counterexamples.size(); ++i) {
    EXPECT_EQ(report.counterexamples[i].dead_at_start,
              reference.counterexamples[i].dead_at_start);
    EXPECT_EQ(report.counterexamples[i].crashes,
              reference.counterexamples[i].crashes);
    EXPECT_EQ(report.counterexamples[i].outputs_lost,
              reference.counterexamples[i].outputs_lost);
    // Exact: %.17g round-trips the double bit-for-bit.
    EXPECT_EQ(report.counterexamples[i].response_time,
              reference.counterexamples[i].response_time);
  }
}

// --- malformed input -------------------------------------------------------

TEST(StreamParse, MalformedRecordsAreCleanErrors) {
  // Truncated line (mid-JSON), unknown record type, non-object, and field
  // kind confusion: each a clean Error naming the problem.
  const char* bad[] = {
      R"({"type":"task","task":3,"branches":)",  // truncated mid-record
      R"({"type":"wormhole"})",                  // unknown type
      R"([1,2,3])",                              // not an object
      R"({"type":"task"})",                      // missing task index
      R"({"type":"meta","format":99})",          // unsupported format
      R"({"type":"meta","format":1,"shard_index":3,"shard_count":2})",
  };
  for (const char* line : bad) {
    const auto record = parse_record(line);
    EXPECT_FALSE(record.has_value()) << "accepted: " << line;
  }
}

TEST(StreamParse, RecordsRoundTrip) {
  StreamMeta meta;
  meta.plan_key = "pk-test";
  meta.max_failures = 2;
  meta.response_bound = 42.25;
  meta.subsets = 11;
  meta.tasks = 27;
  meta.shard_index = 1;
  meta.shard_count = 4;
  meta.max_counterexamples = 16;
  meta.dedup = false;
  const auto parsed = parse_record(write_meta_record(meta));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  ASSERT_EQ(parsed.value().kind, StreamRecord::Kind::kMeta);
  const StreamMeta& back = parsed.value().meta;
  EXPECT_EQ(back.plan_key, "pk-test");
  EXPECT_EQ(back.max_failures, 2);
  EXPECT_EQ(back.response_bound, 42.25);
  EXPECT_EQ(back.subsets, 11u);
  EXPECT_EQ(back.tasks, 27u);
  EXPECT_EQ(back.shard_index, 1u);
  EXPECT_EQ(back.shard_count, 4u);
  EXPECT_FALSE(back.dedup);

  campaign::CertifyTaskPartial task;
  task.task_index = 7;
  task.branches = 101;
  task.worst_response = 23.680199999999999;
  campaign::CertifyBranch branch;
  branch.dead_at_start.push_back(ProcessorId(2));
  branch.crashes.push_back(FailureEvent{ProcessorId(0), 4.5});
  branch.silences.push_back(SilentWindow{ProcessorId(1), 1.0, 2.5});
  branch.outputs_lost = true;
  branch.response_time = kInfinite;
  task.counterexamples.push_back(branch);
  const auto task_back = parse_record(write_task_record(task));
  ASSERT_TRUE(task_back.has_value()) << task_back.error().message;
  ASSERT_EQ(task_back.value().kind, StreamRecord::Kind::kTask);
  const campaign::CertifyTaskPartial& t = task_back.value().task;
  EXPECT_EQ(t.task_index, 7u);
  EXPECT_EQ(t.branches, 101u);
  EXPECT_EQ(t.worst_response, 23.680199999999999);
  ASSERT_EQ(t.counterexamples.size(), 1u);
  EXPECT_EQ(t.counterexamples[0].dead_at_start, branch.dead_at_start);
  EXPECT_EQ(t.counterexamples[0].crashes, branch.crashes);
  EXPECT_EQ(t.counterexamples[0].silences, branch.silences);
  EXPECT_TRUE(t.counterexamples[0].outputs_lost);
  EXPECT_EQ(t.counterexamples[0].response_time, kInfinite);
}

TEST(StreamMerge, RefusesTamperedStreams) {
  const Fixture fixture = Fixture::certified();
  const auto expect_refused = [&](std::vector<std::string> streams,
                                  const std::string& why) {
    const auto merged =
        merge_streams(fixture.schedule, fixture.spec, streams);
    EXPECT_FALSE(merged.has_value()) << why;
  };

  // Incomplete shard set: one of two streams.
  auto two = fixture.shard_streams(2);
  expect_refused({two[0]}, "half the tasks missing");

  // Truncated: drop the end record (last line).
  auto truncated = fixture.shard_streams(1);
  std::string& text = truncated[0];
  text.erase(text.rfind("{\"type\":\"end\""));
  expect_refused(truncated, "no end record");

  // Duplicate coverage: the same full stream twice.
  auto once = fixture.shard_streams(1);
  expect_refused({once[0], once[0]}, "duplicate task records");

  // Cancelled shard.
  auto cancelled = fixture.shard_streams(1);
  StringSink sink;
  const StreamShardResult aborted =
      certify_stream(fixture.schedule, fixture.spec,
                     campaign::CertifyShardSpec{0, 1}, sink,
                     [] { return true; });
  EXPECT_FALSE(aborted.completed);
  expect_refused({sink.text()}, "cancelled shard");

  // Budget mismatch: streams recorded under a different spec.
  campaign::CertifySpec other = fixture.spec;
  other.max_link_failures = 1;
  StringSink other_sink;
  (void)certify_stream(fixture.schedule, other,
                       campaign::CertifyShardSpec{}, other_sink);
  expect_refused({other_sink.text()}, "plan key mismatch");

  // Garbage in the middle of an otherwise fine stream.
  auto garbled = fixture.shard_streams(1);
  garbled[0].insert(garbled[0].find('\n') + 1, "{\"type\":\"task\",}\n");
  expect_refused(garbled, "malformed record");
}

TEST(StreamMerge, ChainConstrainedStreamsMergeByteIdentical) {
  // Chain constraints ride the wire: the meta record carries the spec, the
  // branch records carry the violated names, the task records carry the
  // per-chain envelopes — and every partition still merges byte-identical
  // to single-process certify().
  Fixture fixture = Fixture::certified();
  fixture.spec.latency_constraints.push_back(
      campaign::LatencyConstraint{"roomy", "I", "O", 100.0});
  fixture.spec.latency_constraints.push_back(
      campaign::LatencyConstraint{"tight", "A", "E", 0.01});
  expect_partitions_merge(fixture);

  const auto merged = merge_streams(fixture.schedule, fixture.spec,
                                    fixture.shard_streams(3));
  ASSERT_TRUE(merged.has_value()) << merged.error().message;
  const campaign::CertifyReport& report = merged.value();
  EXPECT_FALSE(report.certified);
  ASSERT_EQ(report.latency_constraints.size(), 2u);
  ASSERT_EQ(report.worst_chain_latency.size(), 2u);
  ASSERT_FALSE(report.counterexamples.empty());
  for (const campaign::CertifyBranch& cex : report.counterexamples) {
    ASSERT_EQ(cex.violated_constraints.size(), 1u);
    EXPECT_EQ(cex.violated_constraints[0], "tight");
  }
}

TEST(StreamMerge, RefusesStreamsWhoseChainConstraintsDisagree) {
  Fixture fixture = Fixture::certified();
  fixture.spec.latency_constraints.push_back(
      campaign::LatencyConstraint{"roomy", "I", "O", 100.0});
  auto streams = fixture.shard_streams(1);

  // A merge without the constraints sees a different plan key outright.
  const Fixture plain = Fixture::certified();
  EXPECT_FALSE(
      merge_streams(plain.schedule, plain.spec, streams).has_value());

  // A tampered meta record that keeps the plan key but renames the chain
  // trips the explicit constraint comparison — the key alone (a hash)
  // must not be the last line of defense.
  auto tampered = streams;
  const std::size_t pos = tampered[0].find("\"roomy\"");
  ASSERT_NE(pos, std::string::npos);
  tampered[0].replace(pos, 7, "\"spoof\"");
  EXPECT_FALSE(
      merge_streams(fixture.schedule, fixture.spec, tampered).has_value());
}

TEST(StreamMerge, BoundedCounterexampleDetail) {
  // The merged certificate keeps at most spec.max_counterexamples branches
  // in detail while counting all of them — the bounded-memory contract.
  Fixture fixture = Fixture::refuted();
  fixture.spec.max_counterexamples = 2;
  const auto merged = merge_streams(fixture.schedule, fixture.spec,
                                    fixture.shard_streams(3));
  ASSERT_TRUE(merged.has_value()) << merged.error().message;
  EXPECT_LE(merged.value().counterexamples.size(), 2u);
  EXPECT_GT(merged.value().total_counterexamples, 2u);
}

}  // namespace
}  // namespace ftsched::service
