// The service JSON parser: full value grammar on well-formed documents,
// clean Errors (never UB) on malformed ones — the parser sits on the
// daemon's untrusted input boundary.
#include <gtest/gtest.h>

#include <string>

#include "service/json.hpp"

namespace ftsched::service {
namespace {

TEST(ServiceJson, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").value().is_null());
  EXPECT_TRUE(parse_json("true").value().boolean);
  EXPECT_FALSE(parse_json("false").value().boolean);
  EXPECT_DOUBLE_EQ(parse_json("42").value().number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-2.5e3").value().number, -2500.0);
  EXPECT_EQ(parse_json("\"hi\"").value().string, "hi");
}

TEST(ServiceJson, ParsesNestedStructure) {
  const auto value =
      parse_json(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(value.has_value());
  const JsonValue& root = value.value();
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[0].number, 1.0);
  EXPECT_TRUE(a->items[2].find("b")->is_null());
  EXPECT_TRUE(root.find("c")->find("d")->boolean);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(ServiceJson, StringEscapes) {
  const auto value = parse_json(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value.value().string, "a\"b\\c\n\tA");
}

TEST(ServiceJson, RoundTripsSeventeenDigitDoubles) {
  // The stream protocol's %.17g rendering must come back bit-exact.
  const double x = 23.680199999999999;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  const auto value = parse_json(buf);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value.value().number, x);  // exact, not near
}

TEST(ServiceJson, TypedAccessorsDefaultOnMismatch) {
  const auto value = parse_json(R"({"n": 3, "s": "x", "b": true})");
  ASSERT_TRUE(value.has_value());
  const JsonValue& root = value.value();
  EXPECT_DOUBLE_EQ(root.number_or("n", -1), 3.0);
  EXPECT_DOUBLE_EQ(root.number_or("s", -1), -1.0);  // kind mismatch
  EXPECT_EQ(root.string_or("s", "d"), "x");
  EXPECT_EQ(root.string_or("n", "d"), "d");
  EXPECT_TRUE(root.bool_or("b", false));
  EXPECT_TRUE(root.bool_or("absent", true));
}

TEST(ServiceJson, MalformedInputsAreCleanErrors) {
  const char* bad[] = {
      "",
      "{",
      "[1, 2",
      "{\"a\":}",
      "{\"a\" 1}",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"trunc \\u00",
      "1 2",     // trailing garbage
      "nul",
      "tru",
      "-",
      "1.",
      "1e",
      "{\"dup\": 1,}",
  };
  for (const char* text : bad) {
    const auto value = parse_json(text);
    EXPECT_FALSE(value.has_value()) << "accepted: " << text;
    if (!value.has_value()) {
      EXPECT_NE(value.error().message.find("json:"), std::string::npos);
    }
  }
}

TEST(ServiceJson, RejectsRawControlCharacterInString) {
  const std::string text = std::string("\"a\nb\"");
  EXPECT_FALSE(parse_json(text).has_value());
}

TEST(ServiceJson, RejectsPathologicalNesting) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += '[';
  for (int i = 0; i < 200; ++i) text += ']';
  const auto value = parse_json(text);
  ASSERT_FALSE(value.has_value());
  EXPECT_NE(value.error().message.find("nesting"), std::string::npos);
}

TEST(ServiceJson, DuplicateKeysKeepFirstOnFind) {
  const auto value = parse_json(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(value.value().find("k")->number, 1.0);
  EXPECT_EQ(value.value().members.size(), 2u);
}

}  // namespace
}  // namespace ftsched::service
