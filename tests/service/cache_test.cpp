// The plan-key result cache: LRU behaviour, hit/miss accounting, the
// disabled (capacity 0) mode, and plan-key identity — isomorphic plans
// share a key, budget resolution collapses claim -1 onto the explicit K.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "service/cache.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::service {
namespace {

CachedResult result_named(const std::string& text) {
  CachedResult result;
  result.certificate_json = text;
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", result_named("cert-a"));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->certificate_json, "cert-a");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put("a", result_named("a"));
  cache.put("b", result_named("b"));
  ASSERT_TRUE(cache.get("a").has_value());  // a is now most recent
  cache.put("c", result_named("c"));        // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, PutRefreshesExistingEntry) {
  ResultCache cache(2);
  cache.put("a", result_named("old"));
  cache.put("b", result_named("b"));
  cache.put("a", result_named("new"));  // refresh: a becomes most recent
  cache.put("c", result_named("c"));    // evicts b, not a
  EXPECT_EQ(cache.get("a")->certificate_json, "new");
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(ResultCacheTest, CapacityZeroDisables) {
  ResultCache cache(0);
  cache.put("a", result_named("a"));
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanKeyTest, StableAndBudgetSensitive) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  campaign::CertifySpec spec;
  const std::string key = plan_key_string(schedule, spec);
  EXPECT_EQ(key, plan_key_string(schedule, spec));  // pure function
  EXPECT_EQ(key.rfind("pk-", 0), 0u);

  campaign::CertifySpec links = spec;
  links.max_link_failures = 1;
  EXPECT_NE(plan_key_string(schedule, links), key);

  campaign::CertifySpec bounded = spec;
  bounded.response_bound = 40.0;
  EXPECT_NE(plan_key_string(schedule, bounded), key);
}

TEST(PlanKeyTest, DerivedClaimCollidesWithExplicitClaim) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  campaign::CertifySpec derived;
  derived.max_failures = -1;  // "the schedule's own tolerance"
  campaign::CertifySpec explicit_k;
  explicit_k.max_failures = schedule.failures_tolerated();
  // Budget resolution happens before keying: both requests are the same
  // sweep, so they must share one cache entry.
  EXPECT_EQ(plan_key_string(schedule, derived),
            plan_key_string(schedule, explicit_k));
}

TEST(PlanKeyTest, IsomorphicPlansShareAKey) {
  // Same problem loaded twice (fresh graph objects, fresh ids) — the key
  // hashes schedule content, not object identity or source text.
  const workload::OwnedProblem a = workload::paper_example1();
  const workload::OwnedProblem b = workload::paper_example1();
  const Schedule sa = schedule_solution1(a.problem).value();
  const Schedule sb = schedule_solution1(b.problem).value();
  EXPECT_EQ(plan_key_string(sa, {}), plan_key_string(sb, {}));
}

}  // namespace
}  // namespace ftsched::service
