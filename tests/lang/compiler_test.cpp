#include "lang/compiler.hpp"

#include <gtest/gtest.h>

#include "graph/dag_algorithms.hpp"

namespace ftsched {
namespace {

constexpr const char* kCruise = R"(
-- cruise control with an integrator state
node cruise(speed: sensor; setpoint: sensor)
returns (throttle: actuator; brake: actuator)
let
  err      = sub(setpoint, speed);
  acc      = add(pre(acc), err);
  throttle = gain(acc);
  brake    = brake_map(err);
tel
)";

TEST(LangCompiler, CruiseControlShape) {
  const auto result = lang::compile_node(kCruise);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const lang::CompiledNode& node = result.value();
  EXPECT_EQ(node.name, "cruise");
  const AlgorithmGraph& graph = *node.graph;

  // 2 sensors + 4 equation comps + 1 mem + 2 actuators.
  EXPECT_EQ(graph.operation_count(), 9u);
  EXPECT_TRUE(graph.is_acyclic());
  EXPECT_TRUE(graph.check().empty());

  ASSERT_EQ(node.inputs.size(), 2u);
  ASSERT_EQ(node.outputs.size(), 2u);
  EXPECT_EQ(graph.operation(node.inputs[0]).kind, OperationKind::kExtioIn);
  EXPECT_EQ(graph.operation(node.outputs[0]).kind,
            OperationKind::kExtioOut);

  // The state register exists and its input edge carries no precedence.
  const OperationId mem = graph.find_operation("pre$acc");
  ASSERT_TRUE(mem.valid());
  EXPECT_EQ(graph.operation(mem).kind, OperationKind::kMem);
  ASSERT_EQ(graph.in_dependencies(mem).size(), 1u);
  EXPECT_FALSE(graph.is_precedence(graph.in_dependencies(mem).front()));

  // err feeds both acc and brake$val.
  const OperationId err = graph.find_operation("err");
  EXPECT_EQ(graph.successors(err).size(), 2u);
  // Output comps are named <output>$val and feed their actuator.
  const OperationId throttle_val = graph.find_operation("throttle$val");
  ASSERT_TRUE(throttle_val.valid());
  const OperationId throttle = graph.find_operation("throttle");
  EXPECT_EQ(graph.successors(throttle_val),
            std::vector<OperationId>{throttle});
}

TEST(LangCompiler, NestedCallsSynthesizeOperations) {
  const auto result = lang::compile_node(R"(
node f(x: sensor) returns (y: actuator)
let
  y = outer(inner(x), x);
tel
)");
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const AlgorithmGraph& graph = *result->graph;
  // x, y$val (outer), y$1 (inner), y.
  EXPECT_EQ(graph.operation_count(), 4u);
  const OperationId inner = graph.find_operation("y$1");
  ASSERT_TRUE(inner.valid());
  const OperationId outer = graph.find_operation("y$val");
  EXPECT_EQ(graph.successors(inner), std::vector<OperationId>{outer});
  // outer has two in-edges: inner and x.
  EXPECT_EQ(graph.in_dependencies(outer).size(), 2u);
}

TEST(LangCompiler, AliasEquationsAndPreOfInput) {
  const auto result = lang::compile_node(R"(
node f(x: sensor) returns (y: actuator)
let
  held = pre(x);  -- unit delay on an input
  y    = use(held);
tel
)");
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const AlgorithmGraph& graph = *result->graph;
  const OperationId mem = graph.find_operation("pre$x");
  ASSERT_TRUE(mem.valid());
  // held is an identity comp fed by the mem.
  const OperationId held = graph.find_operation("held");
  EXPECT_EQ(graph.predecessors(held), std::vector<OperationId>{mem});
}

TEST(LangCompiler, FeedbackThroughPreIsSchedulable) {
  const auto result = lang::compile_node(R"(
node counter(tick: sensor) returns (count: actuator)
let
  count = add(pre(count), tick);
tel
)");
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_TRUE(result->graph->is_acyclic());
  EXPECT_FALSE(result->graph->topological_order().empty());
}

TEST(LangCompiler, RejectsInstantaneousCycle) {
  const auto result = lang::compile_node(R"(
node f(x: sensor) returns (y: actuator)
let
  a = g(b);
  b = h(a);
  y = out(a);
tel
)");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("instantaneous cycle"),
            std::string::npos);
}

TEST(LangCompiler, RejectsBadPrograms) {
  // Undefined variable, with line number.
  const auto undefined = lang::compile_node(
      "node f(x: sensor) returns (y: actuator)\nlet\n  y = g(z);\ntel\n");
  ASSERT_FALSE(undefined.has_value());
  EXPECT_NE(undefined.error().message.find("line 3"), std::string::npos);
  EXPECT_NE(undefined.error().message.find("undefined variable z"),
            std::string::npos);

  // Output without an equation.
  const auto no_eq = lang::compile_node(
      "node f(x: sensor) returns (y: actuator)\nlet\n  a = g(x);\ntel\n");
  ASSERT_FALSE(no_eq.has_value());
  EXPECT_NE(no_eq.error().message.find("no defining equation"),
            std::string::npos);

  // Double definition.
  const auto dup = lang::compile_node(
      "node f(x: sensor) returns (y: actuator)\nlet\n  y = g(x);\n  "
      "y = h(x);\ntel\n");
  ASSERT_FALSE(dup.has_value());
  EXPECT_NE(dup.error().message.find("defined twice"), std::string::npos);

  // Equation shadowing an input.
  const auto shadow = lang::compile_node(
      "node f(x: sensor) returns (y: actuator)\nlet\n  x = g(x);\n  "
      "y = h(x);\ntel\n");
  ASSERT_FALSE(shadow.has_value());

  // Syntax errors.
  EXPECT_FALSE(lang::compile_node("node f() returns").has_value());
  EXPECT_FALSE(lang::compile_node(
                   "node f(x: actuator) returns (y: actuator)\nlet\ntel")
                   .has_value());
  EXPECT_FALSE(
      lang::compile_node(
          "node f(x: sensor) returns (y: actuator)\nlet\n  y = pre x;\ntel")
          .has_value());
  EXPECT_FALSE(lang::compile_node(
                   "node f(x: sensor) returns (y: actuator)\nlet\n  "
                   "y = g(x)\ntel")
                   .has_value());  // missing semicolon
  EXPECT_FALSE(lang::compile_node("").has_value());
}

TEST(LangCompiler, CommentsAndWhitespace) {
  const auto result = lang::compile_node(
      "-- header comment\nnode  f ( x : sensor )\n-- mid\nreturns(y: "
      "actuator) let y = g(x); -- trailing\ntel");
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->graph->operation_count(), 3u);
}

}  // namespace
}  // namespace ftsched
