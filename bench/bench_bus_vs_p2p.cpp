// S4 (§5.6 criterion 4): which solution suits which architecture. The
// paper's qualitative claim — solution 1 for multi-point buses, solution 2
// for point-to-point links — is tested quantitatively: both solutions run
// on both architectures across a CCR sweep, and we report the makespans and
// the win counts. On a bus, solution 2's replicated comms serialize and
// lose; on parallel P2P links, they are cheap and the timeout-free recovery
// makes solution 2 preferable.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;
using workload::ArchKind;
using workload::RandomProblemParams;

namespace {

constexpr int kSeeds = 25;

struct Cell {
  double sol1 = 0;
  double sol2 = 0;
  int sol1_wins = 0;
  int sol2_wins = 0;
  int feasible = 0;
};

Cell duel(ArchKind arch, double ccr) {
  Cell cell;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    RandomProblemParams params;
    params.dag.operations = 18;
    params.dag.width = 4;
    params.arch_kind = arch;
    params.processors = 4;
    params.failures_to_tolerate = 1;
    params.ccr = ccr;
    params.seed = static_cast<std::uint64_t>(seed) * 131;
    const workload::OwnedProblem ex = workload::random_problem(params);
    const auto s1 = schedule_solution1(ex.problem);
    const auto s2 = schedule_solution2(ex.problem);
    if (!s1.has_value() || !s2.has_value()) continue;
    ++cell.feasible;
    cell.sol1 += s1->makespan();
    cell.sol2 += s2->makespan();
    if (time_lt(s1->makespan(), s2->makespan())) {
      ++cell.sol1_wins;
    } else if (time_lt(s2->makespan(), s1->makespan())) {
      ++cell.sol2_wins;
    }
  }
  if (cell.feasible > 0) {
    cell.sol1 /= cell.feasible;
    cell.sol2 /= cell.feasible;
  }
  return cell;
}

void run_table(const char* title, ArchKind arch) {
  bench::section(title);
  std::vector<std::vector<std::string>> table;
  table.push_back({"ccr", "solution 1", "solution 2", "sol1 wins",
                   "sol2 wins", "feasible"});
  for (const double ccr : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const Cell cell = duel(arch, ccr);
    table.push_back({time_to_string(ccr), time_to_string(cell.sol1),
                     time_to_string(cell.sol2),
                     std::to_string(cell.sol1_wins),
                     std::to_string(cell.sol2_wins),
                     std::to_string(cell.feasible) + "/" +
                         std::to_string(kSeeds)});
  }
  std::fputs(render_table(table).c_str(), stdout);
}

}  // namespace

int main() {
  bench::header("S4", "bus vs point-to-point appropriateness (K=1)");
  run_table("4-processor single bus", ArchKind::kBus);
  run_table("4-processor fully connected P2P", ArchKind::kFullyConnected);

  bench::section("paper expectation");
  bench::value("shape",
               "on the bus, solution 1 wins and its lead grows with ccr "
               "(serialized duplicate comms hurt solution 2); on P2P links "
               "the gap closes/reverses since replicated comms run in "
               "parallel while solution 1 pays explicit liveness sends");
  return 0;
}
