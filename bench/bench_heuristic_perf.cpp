// P1: throughput of the scheduling heuristics themselves (google-benchmark)
// versus graph size, processor count, and K — the compile-time cost a
// SynDEx-style tool pays per design iteration.
#include <benchmark/benchmark.h>

#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

workload::OwnedProblem make_problem(std::size_t operations,
                                    std::size_t processors, int k,
                                    workload::ArchKind arch) {
  workload::RandomProblemParams params;
  params.dag.operations = operations;
  params.dag.width = 6;
  params.arch_kind = arch;
  params.processors = processors;
  params.failures_to_tolerate = k;
  params.ccr = 0.5;
  params.seed = 97;
  return workload::random_problem(params);
}

void BM_Solution1_Bus(benchmark::State& state) {
  const auto ex = make_problem(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)),
                               static_cast<int>(state.range(2)),
                               workload::ArchKind::kBus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_solution1(ex.problem));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Solution1_Bus)
    ->Args({20, 4, 1})
    ->Args({50, 4, 1})
    ->Args({100, 4, 1})
    ->Args({200, 4, 1})
    ->Args({100, 8, 1})
    ->Args({100, 8, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_Solution2_P2P(benchmark::State& state) {
  const auto ex = make_problem(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)),
                               static_cast<int>(state.range(2)),
                               workload::ArchKind::kFullyConnected);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_solution2(ex.problem));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Solution2_P2P)
    ->Args({20, 4, 1})
    ->Args({50, 4, 1})
    ->Args({100, 4, 1})
    ->Args({200, 4, 1})
    ->Args({100, 8, 1})
    ->Args({100, 8, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_Baseline(benchmark::State& state) {
  const auto ex = make_problem(static_cast<std::size_t>(state.range(0)), 6,
                               0, workload::ArchKind::kBus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_base(ex.problem));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Baseline)->Arg(50)->Arg(200)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ftsched

BENCHMARK_MAIN();
