// P1: throughput of the scheduling heuristics themselves (google-benchmark)
// versus graph size, processor count, and K — the compile-time cost a
// SynDEx-style tool pays per design iteration. Besides the console table,
// every run writes BENCH_sched.json (override with $FTSCHED_BENCH_OUT) so
// CI can archive results and diff them across commits.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

workload::OwnedProblem make_problem(std::size_t operations,
                                    std::size_t processors, int k,
                                    workload::ArchKind arch) {
  workload::RandomProblemParams params;
  params.dag.operations = operations;
  params.dag.width = 6;
  params.arch_kind = arch;
  params.processors = processors;
  params.failures_to_tolerate = k;
  params.ccr = 0.5;
  params.seed = 97;
  return workload::random_problem(params);
}

void BM_Solution1_Bus(benchmark::State& state) {
  const auto ex = make_problem(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)),
                               static_cast<int>(state.range(2)),
                               workload::ArchKind::kBus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_solution1(ex.problem));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Solution1_Bus)
    ->Args({20, 4, 1})
    ->Args({50, 4, 1})
    ->Args({100, 4, 1})
    ->Args({200, 4, 1})
    ->Args({100, 8, 1})
    ->Args({100, 8, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_Solution2_P2P(benchmark::State& state) {
  const auto ex = make_problem(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)),
                               static_cast<int>(state.range(2)),
                               workload::ArchKind::kFullyConnected);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_solution2(ex.problem));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Solution2_P2P)
    ->Args({20, 4, 1})
    ->Args({50, 4, 1})
    ->Args({100, 4, 1})
    ->Args({200, 4, 1})
    ->Args({100, 8, 1})
    ->Args({100, 8, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_Baseline(benchmark::State& state) {
  const auto ex = make_problem(static_cast<std::size_t>(state.range(0)), 6,
                               0, workload::ArchKind::kBus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_base(ex.problem));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Baseline)->Arg(50)->Arg(200)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

/// Console output as usual, plus a BenchRecord per real (non-aggregate)
/// run. google-benchmark encodes Args as "BM_Name/20/4/1"; the part after
/// the first '/' becomes `params` verbatim.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      bench::BenchRecord record;
      const std::string full = run.benchmark_name();
      const std::size_t slash = full.find('/');
      record.name = full.substr(0, slash);
      if (slash != std::string::npos) record.params = full.substr(slash + 1);
      record.iters = static_cast<std::uint64_t>(run.iterations);
      record.wall_ms = run.iterations > 0
                           ? run.real_accumulated_time * 1e3 /
                                 static_cast<double>(run.iterations)
                           : 0.0;
      records.push_back(std::move(record));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<bench::BenchRecord> records;
};

}  // namespace
}  // namespace ftsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ftsched::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return ftsched::bench::write_bench_json("BENCH_sched.json",
                                          reporter.records)
             ? 0
             : 1;
}
