// S1 (§5.6 criterion 1): fault-tolerance overhead versus the non
// fault-tolerant baseline, across synthetic workloads and K ∈ {0..3}, for
// both solutions on their home architectures, plus the ablation of the
// successor-placement pressure term. Values are means over seeds.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;
using workload::ArchKind;
using workload::RandomProblemParams;

namespace {

constexpr int kSeeds = 20;

struct Row {
  double base_makespan = 0;
  double ft_makespan = 0;
  double comms_ratio = 0;
  int feasible = 0;
};

Row sweep(HeuristicKind kind, ArchKind arch, int k, double ccr,
          SchedulerOptions options = {}) {
  Row row;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    RandomProblemParams params;
    params.dag.operations = 20;
    params.dag.width = 4;
    params.arch_kind = arch;
    params.processors = 5;
    params.failures_to_tolerate = k;
    params.ccr = ccr;
    params.seed = static_cast<std::uint64_t>(seed);
    const workload::OwnedProblem ex = workload::random_problem(params);
    const auto base = schedule_base(ex.problem, options);
    const auto ft = schedule(ex.problem, kind, options);
    if (!base.has_value() || !ft.has_value()) continue;
    ++row.feasible;
    row.base_makespan += base->makespan();
    row.ft_makespan += ft->makespan();
    const auto base_m = compute_metrics(base.value());
    const auto ft_m = compute_metrics(ft.value());
    row.comms_ratio += base_m.inter_processor_comms == 0
                           ? 0
                           : static_cast<double>(ft_m.inter_processor_comms) /
                                 static_cast<double>(
                                     base_m.inter_processor_comms);
  }
  if (row.feasible > 0) {
    row.base_makespan /= row.feasible;
    row.ft_makespan /= row.feasible;
    row.comms_ratio /= row.feasible;
  }
  return row;
}

void run_table(const char* title, HeuristicKind kind, ArchKind arch,
               double ccr) {
  bench::section(title);
  std::vector<std::vector<std::string>> table;
  table.push_back({"K", "baseline", "fault-tolerant", "overhead",
                   "overhead %", "comm ratio", "feasible"});
  for (int k = 0; k <= 3; ++k) {
    const Row row = sweep(kind, arch, k, ccr);
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.1f%%",
                  row.base_makespan == 0
                      ? 0
                      : 100.0 * (row.ft_makespan - row.base_makespan) /
                            row.base_makespan);
    table.push_back({std::to_string(k), time_to_string(row.base_makespan),
                     time_to_string(row.ft_makespan),
                     time_to_string(row.ft_makespan - row.base_makespan), pct,
                     time_to_string(row.comms_ratio),
                     std::to_string(row.feasible) + "/" +
                         std::to_string(kSeeds)});
  }
  std::fputs(render_table(table).c_str(), stdout);
}

}  // namespace

int main() {
  bench::header("S1", "fault-tolerance overhead sweep (20 seeds per row)");

  run_table("solution 1 on a 5-processor bus (ccr 0.5)",
            HeuristicKind::kSolution1, ArchKind::kBus, 0.5);
  run_table("solution 2 on a 5-processor full P2P network (ccr 0.5)",
            HeuristicKind::kSolution2, ArchKind::kFullyConnected, 0.5);
  run_table("solution 1 on the bus, communication heavy (ccr 2.0)",
            HeuristicKind::kSolution1, ArchKind::kBus, 2.0);
  run_table("solution 2 on the P2P network, communication heavy (ccr 2.0)",
            HeuristicKind::kSolution2, ArchKind::kFullyConnected, 2.0);

  bench::section("ablation: successor-placement pressure term (K=1, bus)");
  SchedulerOptions off;
  off.successor_placement_penalty = false;
  const Row with = sweep(HeuristicKind::kSolution1, ArchKind::kBus, 1, 0.5);
  const Row without =
      sweep(HeuristicKind::kSolution1, ArchKind::kBus, 1, 0.5, off);
  bench::value("baseline makespan with/without",
               time_to_string(with.base_makespan) + " / " +
                   time_to_string(without.base_makespan));
  bench::value("solution-1 makespan with/without",
               time_to_string(with.ft_makespan) + " / " +
                   time_to_string(without.ft_makespan));

  bench::section("paper expectation");
  bench::value("shape", "overhead grows with K and with ccr; solution 2's "
                        "comm ratio exceeds solution 1's (§6.4 vs §7.4)");
  return 0;
}
