// Frontier sweep throughput: wall time of the full (K, L, S) lattice walk
// over the paper's Fig. 17 / Fig. 22 schedules, with the cross-point memo
// sharing on versus off — the leverage PR 9's subtree memo buys when one
// CertifyMemo serves every lattice point. Also prints the measured
// certifiable surface beside the static GLS ceiling (the EXPERIMENTS.md
// frontier table) and re-checks determinism: the report JSON must be
// byte-identical across thread counts and prune settings. Writes
// BENCH_frontier.json; exit 1 when a verdict or the byte-identity is
// wrong — speed is reported, not gated.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "campaign/frontier.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string surface_string(const campaign::FrontierReport& report) {
  std::string out;
  for (const campaign::FrontierPoint& p : report.surface) {
    if (!out.empty()) out += ' ';
    out += '(';
    out += std::to_string(p.max_failures);
    out += ',';
    out += std::to_string(p.max_link_failures);
    out += ',';
    out += std::to_string(p.max_silences);
    out += ')';
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

int main() {
  bench::header("bench_frontier",
                "(K, L, S) certification frontier sweep, shared-memo walk");

  // Heap-held problems: Schedule keeps a pointer to owned->problem, so
  // the problem must not relocate when the config vector grows.
  struct Config {
    std::string name;
    std::unique_ptr<workload::OwnedProblem> owned;
    Schedule schedule;
  };
  std::vector<Config> configs;
  {
    auto ex = std::make_unique<workload::OwnedProblem>(
        workload::paper_example1());
    Schedule schedule = schedule_solution1(ex->problem).value();
    configs.push_back(
        Config{"fig17_solution1", std::move(ex), std::move(schedule)});
  }
  {
    auto ex = std::make_unique<workload::OwnedProblem>(
        workload::paper_example2());
    Schedule schedule = schedule_solution2(ex->problem).value();
    configs.push_back(
        Config{"fig22_solution2", std::move(ex), std::move(schedule)});
  }

  bool ok = true;
  std::vector<bench::BenchRecord> records;

  for (const Config& config : configs) {
    bench::section(config.name);
    const ArchitectureGraph& arch = *config.owned->problem.architecture;

    const campaign::GlsBounds gls = campaign::gls_bounds(config.schedule);
    bench::value("GLS K ceiling", std::to_string(gls.k_bound));
    bench::value("GLS L ceiling",
                 gls.l_unbounded ? "unbounded" : std::to_string(gls.l_bound));

    campaign::FrontierReport reference;
    const int reps = 3;
    double pruned_best = -1;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      campaign::FrontierSpec spec;
      spec.threads = 1;
      reference = campaign::frontier_sweep(config.schedule, spec);
      const double elapsed = seconds_since(start);
      if (pruned_best < 0 || elapsed < pruned_best) pruned_best = elapsed;
    }

    double naive_best = -1;
    campaign::FrontierReport unpruned;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      campaign::FrontierSpec spec;
      spec.threads = 1;
      spec.prune = false;
      unpruned = campaign::frontier_sweep(config.schedule, spec);
      const double elapsed = seconds_since(start);
      if (naive_best < 0 || elapsed < naive_best) naive_best = elapsed;
    }

    // Determinism gate: threads and prune must not change a byte.
    campaign::FrontierSpec threaded;
    threaded.threads = 0;
    const std::string reference_json = reference.to_json(arch);
    if (campaign::frontier_sweep(config.schedule, threaded).to_json(arch) !=
            reference_json ||
        unpruned.to_json(arch) != reference_json) {
      std::fprintf(stderr, "FAIL: %s frontier not byte-identical\n",
                   config.name.c_str());
      ok = false;
    }

    // The surface must respect the static ceiling.
    for (const campaign::FrontierPoint& p : reference.surface) {
      if (p.max_failures > gls.k_bound ||
          (!gls.l_unbounded && p.max_link_failures > gls.l_bound)) {
        std::fprintf(stderr, "FAIL: %s surface exceeds the GLS ceiling\n",
                     config.name.c_str());
        ok = false;
      }
    }

    bench::value("lattice points", std::to_string(reference.points.size()));
    bench::value("explored / implied",
                 std::to_string(reference.points_explored) + " / " +
                     std::to_string(reference.points_implied));
    bench::value("certifiable surface", surface_string(reference));
    bench::value("sweep (memo shared)",
                 std::to_string(pruned_best * 1e3) + " ms");
    bench::value("sweep (prune off)",
                 std::to_string(naive_best * 1e3) + " ms");
    const double speedup = pruned_best > 0 ? naive_best / pruned_best : 0;
    bench::value("memo leverage", std::to_string(speedup) + "x");

    bench::BenchRecord record;
    record.name = "frontier/" + config.name;
    record.params = "threads=1;reps=" + std::to_string(reps);
    record.wall_ms = pruned_best * 1e3;
    record.iters = static_cast<std::uint64_t>(reps);
    record.derived = {
        {"points", static_cast<double>(reference.points.size())},
        {"points_explored", static_cast<double>(reference.points_explored)},
        {"points_implied", static_cast<double>(reference.points_implied)},
        {"surface_points", static_cast<double>(reference.surface.size())},
        {"gls_k_bound", static_cast<double>(gls.k_bound)},
        {"unpruned_wall_ms", naive_best * 1e3},
        {"memo_speedup", speedup},
    };
    records.push_back(std::move(record));
  }

  if (!bench::write_bench_json("BENCH_frontier.json", records)) ok = false;
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
