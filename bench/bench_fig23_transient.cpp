// F23: execution of the solution-2 schedule when P2 crashes right after
// computing A (example 2). The redundant parallel communications mean no
// processor ever waits on a timeout; data heading to the dead processor is
// discarded, and subsequent iterations simply drop the useless transfers.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("F23", "solution 2 under a P2 crash, example 2");

  const workload::OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  const IterationResult nominal = simulator.run();
  // P2 finishes its replica of A at t=3; crash just after (Fig. 23).
  const IterationResult transient =
      simulator.run(FailureScenario::crash(p2, 3.0));
  const IterationResult subsequent =
      simulator.run(FailureScenario::dead_from_start({p2}));

  bench::section("transient iteration trace (P2 crashes at t=3)");
  std::fputs(transient.trace
                 .to_text(*ex.problem.algorithm, *ex.problem.architecture)
                 .c_str(),
             stdout);

  bench::section("paper-vs-measured");
  bench::value("outputs produced (transient)",
               transient.all_outputs_produced ? "yes" : "NO");
  bench::value("outputs produced (subsequent)",
               subsequent.all_outputs_produced ? "yes" : "NO");
  bench::value("timeouts fired (transient)",
               std::to_string(transient.trace.count(TraceEvent::Kind::kTimeout)) +
                   "  (§7.1: no timeouts anywhere)");
  bench::value("failure-free response",
               time_to_string(nominal.response_time));
  bench::value("transient response",
               time_to_string(transient.response_time) +
                   "  (first arrivals win; minimal degradation)");
  bench::value("subsequent response",
               time_to_string(subsequent.response_time));
  bench::value(
      "transfers nominal/subsequent",
      std::to_string(nominal.trace.count(TraceEvent::Kind::kTransferStart)) +
          "/" +
          std::to_string(
              subsequent.trace.count(TraceEvent::Kind::kTransferStart)) +
          "  (useless comms disappear, §7.3)");

  const bool ok = transient.all_outputs_produced &&
                  subsequent.all_outputs_produced &&
                  transient.trace.count(TraceEvent::Kind::kTimeout) == 0;
  return ok ? 0 : 1;
}
