// S3 (§5.6 criterion 3): timing of the faulty system — the transient
// iteration (failure detected by timeouts) versus the subsequent iterations
// (failure known). Sweeps the crash instant across the whole iteration for
// both solutions on the paper's examples.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

namespace {

void run_table(const char* title, const Schedule& schedule,
               ProcessorId victim) {
  bench::section(title);
  const Simulator simulator(schedule);
  const Time nominal = simulator.run().response_time;
  const Time subsequent =
      simulator.run(FailureScenario::dead_from_start({victim}))
          .response_time;

  std::vector<std::vector<std::string>> table;
  table.push_back({"crash at", "transient response", "timeouts", "stretch"});
  for (int step = 0; step <= 8; ++step) {
    const Time at = schedule.makespan() * step / 8.0;
    const IterationResult run =
        simulator.run(FailureScenario::crash(victim, at));
    char stretch[32];
    std::snprintf(stretch, sizeof stretch, "%.2fx",
                  run.response_time / nominal);
    table.push_back({time_to_string(at), time_to_string(run.response_time),
                     std::to_string(run.trace.count(TraceEvent::Kind::kTimeout)),
                     stretch});
  }
  std::fputs(render_table(table).c_str(), stdout);
  bench::value("failure-free response", time_to_string(nominal));
  bench::value("subsequent-iteration response", time_to_string(subsequent));
}

}  // namespace

int main() {
  bench::header("S3", "transient vs subsequent iteration timing (P2 dies)");

  const workload::OwnedProblem ex1 = workload::paper_example1();
  const Schedule s1 = schedule_solution1(ex1.problem).value();
  run_table("solution 1, example 1 (bus)", s1,
            ex1.problem.architecture->find_processor("P2"));

  const workload::OwnedProblem ex2 = workload::paper_example2();
  const Schedule s2 = schedule_solution2(ex2.problem).value();
  run_table("solution 2, example 2 (P2P)", s2,
            ex2.problem.architecture->find_processor("P2"));

  bench::section("paper expectation");
  bench::value("shape",
               "solution 1's transient iteration pays the waiting delay "
               "(timeouts > 0, stretch > 1) and recovers in subsequent "
               "iterations; solution 2 never waits (0 timeouts, stretch "
               "close to 1) — §6.6 vs §7.4");
  return 0;
}
