// Campaign engine throughput: scenarios/sec of the parallel fault-injection
// runner over the paper's example-1 solution-1 schedule, swept across
// thread counts — the scaling evidence for the work-stealing pool. Also
// cross-checks that every thread count reproduces the single-thread
// verdict and coverage bit-exactly (the determinism contract). Results are
// additionally written to BENCH_campaign.json (override with
// $FTSCHED_BENCH_OUT) for CI archiving.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "campaign/runner.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("C1", "fault-injection campaign throughput scaling");

  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  campaign::CampaignOptions options;
  options.scenarios = 4000;
  options.seed = 42;
  options.spec.max_iterations = 3;
  options.spec.over_budget_fraction = 0.15;
  options.spec.silence_probability = 0.10;
  options.spec.suspect_probability = 0.10;

  bench::value("hardware threads",
               std::to_string(std::thread::hardware_concurrency()));
  bench::value("scenarios", std::to_string(options.scenarios));

  bench::section("scenarios/sec by thread count");
  double base_rate = 0;
  std::size_t reference_violations = 0;
  std::size_t reference_contract = 0;
  bool deterministic = true;
  std::vector<bench::BenchRecord> records;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    options.threads = threads;
    const campaign::CampaignReport report =
        campaign::run_campaign(schedule, options);
    if (threads == 1) {
      base_rate = report.scenarios_per_second();
      reference_violations = report.total_violations;
      reference_contract = report.within_contract;
    }
    deterministic = deterministic &&
                    report.total_violations == reference_violations &&
                    report.within_contract == reference_contract;
    std::printf("threads=%u %10.0f scenarios/s  speedup %.2fx  violations %zu\n",
                threads, report.scenarios_per_second(),
                base_rate > 0 ? report.scenarios_per_second() / base_rate : 0.0,
                report.total_violations);
    bench::BenchRecord record;
    record.name = "campaign_throughput";
    record.params = "threads=" + std::to_string(threads) +
                    ";scenarios=" + std::to_string(options.scenarios);
    record.wall_ms = report.elapsed_seconds * 1e3;
    record.iters = options.scenarios;
    records.push_back(std::move(record));
  }
  bench::value("thread-count deterministic", deterministic ? "yes" : "NO");
  if (!bench::write_bench_json("BENCH_campaign.json", records)) return 1;
  return deterministic ? 0 : 1;
}
