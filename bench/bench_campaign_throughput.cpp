// Campaign engine throughput: scenarios/sec of the parallel fault-injection
// runner over the paper's example-1 solution-1 schedule, swept across
// thread counts — the scaling evidence for the work-stealing pool. Also
// cross-checks that every thread count and every repetition reproduces the
// single-thread verdict and coverage bit-exactly (the determinism
// contract). Each configuration is measured as the best of several warm
// repetitions: the campaign is a pure function of (schedule, options), so
// warmup and rep count cannot change any result, only steady the clock on
// noisy shared runners. Results are additionally written to
// BENCH_campaign.json (override with $FTSCHED_BENCH_OUT) for CI archiving;
// each record carries derived scenarios_per_s / scaling_vs_1t /
// hardware_threads fields so compare_bench.py can gate throughput and
// thread scaling directly.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "campaign/runner.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("C1", "fault-injection campaign throughput scaling");

  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();

  campaign::CampaignOptions options;
  options.scenarios = 4000;
  options.seed = 42;
  options.spec.max_iterations = 3;
  options.spec.over_budget_fraction = 0.15;
  options.spec.silence_probability = 0.10;
  options.spec.suspect_probability = 0.10;

  const unsigned hardware = std::thread::hardware_concurrency();
  bench::value("hardware threads", std::to_string(hardware));
  bench::value("scenarios", std::to_string(options.scenarios));

  // Warmup: page in code, size allocator arenas. Discarded.
  options.threads = 1;
  (void)campaign::run_campaign(schedule, options);

  bench::section("scenarios/sec by thread count (best of 3 warm reps)");
  constexpr int kReps = 3;
  double base_rate = 0;
  std::size_t reference_violations = 0;
  std::size_t reference_contract = 0;
  bool first_config = true;
  bool deterministic = true;
  std::vector<bench::BenchRecord> records;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    options.threads = threads;
    double best_seconds = 0;
    std::size_t violations = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const campaign::CampaignReport report =
          campaign::run_campaign(schedule, options);
      if (first_config) {
        reference_violations = report.total_violations;
        reference_contract = report.within_contract;
        first_config = false;
      }
      deterministic = deterministic &&
                      report.total_violations == reference_violations &&
                      report.within_contract == reference_contract;
      if (rep == 0 || report.elapsed_seconds < best_seconds) {
        best_seconds = report.elapsed_seconds;
      }
      violations = report.total_violations;
    }
    const double rate =
        best_seconds > 0 ? options.scenarios / best_seconds : 0;
    if (threads == 1) base_rate = rate;
    const double scaling = base_rate > 0 ? rate / base_rate : 0;
    std::printf(
        "threads=%u %10.0f scenarios/s  speedup %.2fx  violations %zu\n",
        threads, rate, scaling, violations);
    bench::BenchRecord record;
    record.name = "campaign_throughput";
    record.params = "threads=" + std::to_string(threads) +
                    ";scenarios=" + std::to_string(options.scenarios);
    record.wall_ms = best_seconds * 1e3;
    record.iters = options.scenarios;
    record.derived.emplace_back("scenarios_per_s", rate);
    record.derived.emplace_back("hardware_threads",
                                static_cast<double>(hardware));
    if (threads > 1) record.derived.emplace_back("scaling_vs_1t", scaling);
    records.push_back(std::move(record));
  }
  bench::value("thread-count deterministic", deterministic ? "yes" : "NO");
  if (!bench::write_bench_json("BENCH_campaign.json", records)) return 1;
  return deterministic ? 0 : 1;
}
