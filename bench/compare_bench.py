#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json result files.

Compares a fresh benchmark run against a committed baseline and fails
(exit 1) when any configuration got more than THRESHOLD times slower in
mean wall-clock per iteration. The default threshold of 2.5x is deliberately
loose: shared CI runners are noisy, and the gate exists to catch structural
regressions (an accidentally quadratic loop, a reintroduced per-evaluation
allocation), not percent-level jitter. Faster-than-baseline results are
reported but never fail; refresh the baseline deliberately when the
scheduler gets faster (see bench/baseline/).

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 2.5]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        records = json.load(f)
    table = {}
    for r in records:
        table[(r["name"], r["params"])] = float(r["wall_ms"])
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="fail when current/baseline exceeds this "
                             "(default: 2.5)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    missing = []
    print(f"{'benchmark':<42} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for key, base_ms in sorted(baseline.items()):
        name = f"{key[0]}/{key[1]}"
        if key not in current:
            missing.append(name)
            print(f"{name:<42} {base_ms:>10.4f}ms {'MISSING':>12}")
            continue
        cur_ms = current[key]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        flag = " REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<42} {base_ms:>10.4f}ms {cur_ms:>10.4f}ms "
              f"{ratio:>7.2f}x{flag}")
        if ratio > args.threshold:
            failures.append((name, ratio))

    for key in sorted(current.keys() - baseline.keys()):
        print(f"{key[0]}/{key[1]:<42} (new, no baseline)")

    if missing:
        print(f"\nFAIL: {len(missing)} baseline configuration(s) not "
              f"measured: {', '.join(missing)}", file=sys.stderr)
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} configuration(s) more than "
              f"{args.threshold}x slower than baseline:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: no configuration exceeded {args.threshold}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
