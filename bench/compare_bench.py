#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json result files.

Compares a fresh benchmark run against a committed baseline and fails
(exit 1) when any configuration got more than THRESHOLD times slower in
mean wall-clock per iteration. The default threshold of 2.5x is deliberately
loose: shared CI runners are noisy, and the gate exists to catch structural
regressions (an accidentally quadratic loop, a reintroduced per-evaluation
allocation), not percent-level jitter. Faster-than-baseline results are
reported but never fail; refresh the baseline deliberately when the
scheduler gets faster (see bench/baseline/).

Two additional, optional gates introduced with the event-core rebuild:

--reference REF.json --min-speedup X
    Every configuration present in both files must run at least X times
    faster (wall per iteration) than in REF. Used with the checked-in
    pre-rebuild measurement (BENCH_campaign.prerebuild.json) to pin the
    rebuild's throughput win so it cannot silently erode.

--min-reduction Z [--reduction-name certify_deep]
    Every record of the named benchmark that carries a derived
    branch_reduction field (the deep-certification bench emits one on its
    pruned gate config: brute-force branches over pruned simulated
    branches) must report at least Z. Pins the pruning layer's win — a
    memo or slack regression shows up as a reduction collapse long before
    it shows up as a wall-clock regression on fast runners.

--min-scaling Y [--scaling-name campaign_throughput]
    The named benchmark's threads=8 record must deliver at least Y times
    the threads=1 rate (records carry derived scenarios_per_s and
    hardware_threads fields). Hardware-aware: the requirement only fully
    applies when the runner has >= 8 hardware threads; with 2..7 it is
    scaled by hw/8, and with a single hardware thread the check is skipped
    (threads cannot help there and oversubscription legitimately costs).

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 2.5]
           [--reference REF.json --min-speedup X] [--min-scaling Y]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        records = json.load(f)
    table = {}
    for r in records:
        table[(r["name"], r["params"])] = r
    return table


def wall(record):
    return float(record["wall_ms"])


def rate(record):
    """Iterations per second; prefers the bench's own derived rate field."""
    for key in ("scenarios_per_s", "branches_per_s"):
        if key in record:
            return float(record[key])
    ms = wall(record)
    return float(record.get("iters", 0)) / (ms / 1e3) if ms > 0 else 0.0


def threads_of(record):
    for part in record["params"].split(";"):
        if part.startswith("threads="):
            return int(part.split("=", 1)[1])
    return None


def check_regression(baseline, current, threshold):
    failures = []
    missing = []
    print(f"{'benchmark':<42} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for key, base in sorted(baseline.items()):
        name = f"{key[0]}/{key[1]}"
        if key not in current:
            missing.append(name)
            print(f"{name:<42} {wall(base):>10.4f}ms {'MISSING':>12}")
            continue
        cur_ms = wall(current[key])
        base_ms = wall(base)
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        flag = " REGRESSION" if ratio > threshold else ""
        print(f"{name:<42} {base_ms:>10.4f}ms {cur_ms:>10.4f}ms "
              f"{ratio:>7.2f}x{flag}")
        if ratio > threshold:
            failures.append((name, ratio))

    for key in sorted(current.keys() - baseline.keys()):
        print(f"{key[0]}/{key[1]:<42} (new, no baseline)")
    return failures, missing


def check_speedup(reference, current, min_speedup):
    """Every shared configuration must be >= min_speedup faster than REF."""
    failures = []
    print(f"\n{'speedup vs reference':<42} {'reference':>12} "
          f"{'current':>12} {'speedup':>8}")
    for key, ref in sorted(reference.items()):
        if key not in current:
            continue
        name = f"{key[0]}/{key[1]}"
        ref_ms = wall(ref)
        cur_ms = wall(current[key])
        speedup = ref_ms / cur_ms if cur_ms > 0 else float("inf")
        flag = "" if speedup >= min_speedup else " TOO SLOW"
        print(f"{name:<42} {ref_ms:>10.4f}ms {cur_ms:>10.4f}ms "
              f"{speedup:>7.2f}x{flag}")
        if speedup < min_speedup:
            failures.append((name, speedup))
    return failures


def check_scaling(current, name, min_scaling):
    """threads=8 rate vs threads=1 rate, scaled by available hardware."""
    by_threads = {}
    hardware = None
    for (bench_name, _), record in current.items():
        if bench_name != name:
            continue
        t = threads_of(record)
        if t is not None:
            by_threads[t] = record
        if "hardware_threads" in record:
            hardware = int(record["hardware_threads"])
    if 1 not in by_threads or 8 not in by_threads:
        print(f"\nscaling check: {name} lacks threads=1/threads=8 records; "
              f"skipped")
        return []
    if hardware is None or hardware < 2:
        print(f"\nscaling check: {hardware or 'unknown'} hardware "
              f"thread(s); skipped (threads cannot help)")
        return []
    required = min_scaling * (1.0 if hardware >= 8 else hardware / 8.0)
    actual = rate(by_threads[8]) / rate(by_threads[1]) \
        if rate(by_threads[1]) > 0 else 0.0
    verdict = "ok" if actual >= required else "FAIL"
    print(f"\nscaling check: {name} 8T/1T = {actual:.2f}x "
          f"(required >= {required:.2f}x on {hardware} hw threads): "
          f"{verdict}")
    if actual < required:
        return [(f"{name} 8T/1T scaling", actual)]
    return []


def check_reduction(current, name, min_reduction):
    """Every branch_reduction the named bench reports must clear the gate."""
    failures = []
    found = False
    print(f"\n{'branch reduction':<42} {'reduction':>12} {'required':>12}")
    for (bench_name, params), record in sorted(current.items()):
        if bench_name != name or "branch_reduction" not in record:
            continue
        found = True
        reduction = float(record["branch_reduction"])
        verdict = "" if reduction >= min_reduction else " TOO LOW"
        print(f"{bench_name}/{params:<42} {reduction:>11.2f}x "
              f"{min_reduction:>11.2f}x{verdict}")
        if reduction < min_reduction:
            failures.append((f"{bench_name}/{params}", reduction))
    if not found:
        print(f"no {name} record carries branch_reduction")
        failures.append((f"{name} branch_reduction records", 0.0))
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="fail when current/baseline wall exceeds this "
                             "(default: 2.5)")
    parser.add_argument("--reference",
                        help="pre-optimization measurement to gate speedup "
                             "against (with --min-speedup)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when current is not at least this many "
                             "times faster than --reference")
    parser.add_argument("--min-scaling", type=float, default=0.0,
                        help="fail when the 8-thread rate is below this "
                             "multiple of the 1-thread rate (hardware-aware)")
    parser.add_argument("--scaling-name", default="campaign_throughput",
                        help="benchmark name the scaling gate inspects")
    parser.add_argument("--min-reduction", type=float, default=0.0,
                        help="fail when any branch_reduction the reduction "
                             "benchmark reports is below this")
    parser.add_argument("--reduction-name", default="certify_deep",
                        help="benchmark name the reduction gate inspects")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures, missing = check_regression(baseline, current, args.threshold)

    speedup_failures = []
    if args.reference and args.min_speedup > 0:
        speedup_failures = check_speedup(load(args.reference), current,
                                         args.min_speedup)

    scaling_failures = []
    if args.min_scaling > 0:
        scaling_failures = check_scaling(current, args.scaling_name,
                                         args.min_scaling)

    reduction_failures = []
    if args.min_reduction > 0:
        reduction_failures = check_reduction(current, args.reduction_name,
                                             args.min_reduction)

    status = 0
    if missing:
        print(f"\nFAIL: {len(missing)} baseline configuration(s) not "
              f"measured: {', '.join(missing)}", file=sys.stderr)
        status = 1
    if failures:
        print(f"\nFAIL: {len(failures)} configuration(s) more than "
              f"{args.threshold}x slower than baseline:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        status = 1
    if speedup_failures:
        print(f"\nFAIL: {len(speedup_failures)} configuration(s) below "
              f"{args.min_speedup}x the reference:", file=sys.stderr)
        for name, speedup in speedup_failures:
            print(f"  {name}: {speedup:.2f}x", file=sys.stderr)
        status = 1
    if scaling_failures:
        print(f"\nFAIL: thread scaling below the gate:", file=sys.stderr)
        for name, actual in scaling_failures:
            print(f"  {name}: {actual:.2f}x", file=sys.stderr)
        status = 1
    if reduction_failures:
        print(f"\nFAIL: branch reduction below {args.min_reduction}x:",
              file=sys.stderr)
        for name, actual in reduction_failures:
            print(f"  {name}: {actual:.2f}x", file=sys.stderr)
        status = 1
    if status == 0:
        print(f"\nOK: all gates passed (threshold {args.threshold}x"
              + (f", min-speedup {args.min_speedup}x" if args.min_speedup
                 else "")
              + (f", min-scaling {args.min_scaling}x" if args.min_scaling
                 else "")
              + (f", min-reduction {args.min_reduction}x"
                 if args.min_reduction else "") + ")")
    return status


if __name__ == "__main__":
    sys.exit(main())
