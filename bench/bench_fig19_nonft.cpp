// F19: the non-fault-tolerant SynDEx baseline on example 1 and the
// fault-tolerance overhead of §6.6. Paper: baseline 8.6, overhead
// 9.4 - 8.6 = 0.8. Our deterministic tie-breaks yield a slightly better
// baseline (8.8 after the successor-placement refinement), overhead 0.6 —
// same sign and magnitude; the published figure is an image we cannot read.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("F19", "non fault-tolerant schedule, example 1");

  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule base = schedule_base(ex.problem).value();
  const Schedule ft = schedule_solution1(ex.problem).value();
  const bool valid = validate(base).empty();

  bench::section("baseline schedule (Figure 19)");
  std::fputs(to_text(base).c_str(), stdout);
  bench::section("gantt");
  std::fputs(to_gantt(base).c_str(), stdout);

  bench::section("paper-vs-measured");
  bench::compare("baseline makespan (Fig. 19)", 8.6, base.makespan(),
                 "deterministic tie-breaks, see EXPERIMENTS.md");
  bench::compare("FT overhead (§6.6)", 0.8, overhead(ft, base),
                 "positive, sub-unit: shape holds");
  bench::value("validator", valid ? "clean" : "VIOLATIONS");
  return valid ? 0 : 1;
}
