// T1 / T2 / F7: the paper's input artefacts — the shared algorithm graph
// (Figures 7/13/21, dumped as DOT) and the two characteristics tables
// (§5.4 / §6.5 / §7.3), regenerated from the workload library.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "graph/dot.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

namespace {

void print_exec_table(const workload::OwnedProblem& ex) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> head{"proc \\ op"};
  for (const Operation& op : ex.algorithm->operations()) {
    head.push_back(op.name);
  }
  rows.push_back(head);
  for (const Processor& proc : ex.architecture->processors()) {
    std::vector<std::string> row{proc.name};
    for (const Operation& op : ex.algorithm->operations()) {
      row.push_back(time_to_string(ex.exec->duration(op.id, proc.id)));
    }
    rows.push_back(row);
  }
  std::fputs(render_table(rows).c_str(), stdout);
}

void print_comm_table(const workload::OwnedProblem& ex) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> head{"link \\ dep"};
  for (const Dependency& dep : ex.algorithm->dependencies()) {
    head.push_back(dep.name);
  }
  rows.push_back(head);
  for (const Link& link : ex.architecture->links()) {
    std::vector<std::string> row{link.name};
    for (const Dependency& dep : ex.algorithm->dependencies()) {
      row.push_back(time_to_string(ex.comm->duration(dep.id, link.id)));
    }
    rows.push_back(row);
  }
  std::fputs(render_table(rows).c_str(), stdout);
}

}  // namespace

int main() {
  bench::header("T1/T2/F7", "paper input tables and algorithm graph");

  bench::section("Figure 7/13/21: algorithm graph (DOT)");
  std::fputs(to_dot(*workload::paper_example1().algorithm, "paper").c_str(),
             stdout);

  const workload::OwnedProblem ex1 = workload::paper_example1();
  bench::section("T1: execution durations (both examples), time units");
  print_exec_table(ex1);
  bench::section("T1: communication durations, example 1 (bus)");
  print_comm_table(ex1);

  const workload::OwnedProblem ex2 = workload::paper_example2();
  bench::section("T2: communication durations, example 2 (P2P links)");
  print_comm_table(ex2);

  bench::section("notes");
  bench::value("OCR caveat",
               "one cell per published table is garbled in our source; "
               "values reconstructed and cross-checked against the §6.5 "
               "prose checkpoints (see EXPERIMENTS.md)");
  return 0;
}
