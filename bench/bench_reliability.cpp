// X1 (extension): iteration reliability under independent fail-stop
// processor failures — the dependability number behind the paper's §2.3
// framing, computed by exhaustive subset injection. Compares the baseline
// against both solutions on the paper's examples and on the 5-ECU CyCAB-
// style bus, across a sweep of per-processor failure probabilities.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sim/reliability.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;

namespace {

void run_table(const char* title, const Problem& problem,
               HeuristicKind ft_kind) {
  bench::section(title);
  const Schedule base = schedule_base(problem).value();
  const Schedule ft = schedule(problem, ft_kind).value();

  std::vector<std::vector<std::string>> table;
  table.push_back({"p(fail)", "baseline R", "fault-tolerant R",
                   "guaranteed bound", "unreliability ratio"});
  for (const double p : {0.001, 0.01, 0.05, 0.1, 0.2}) {
    const double r_base =
        analyze_reliability(base, p).iteration_reliability;
    const ReliabilityReport ft_report = analyze_reliability(ft, p);
    char cells[4][32];
    std::snprintf(cells[0], 32, "%.6f", r_base);
    std::snprintf(cells[1], 32, "%.6f", ft_report.iteration_reliability);
    std::snprintf(cells[2], 32, "%.6f", ft_report.lower_bound);
    std::snprintf(cells[3], 32, "%.1fx",
                  (1 - r_base) / (1 - ft_report.iteration_reliability));
    table.push_back({time_to_string(p), cells[0], cells[1], cells[2],
                     cells[3]});
  }
  std::fputs(render_table(table).c_str(), stdout);
}

}  // namespace

int main() {
  bench::header("X1", "iteration reliability vs processor failure rate");

  const workload::OwnedProblem ex1 = workload::paper_example1();
  run_table("example 1 (bus, K=1, solution 1)", ex1.problem,
            HeuristicKind::kSolution1);

  const workload::OwnedProblem ex2 = workload::paper_example2();
  run_table("example 2 (P2P, K=1, solution 2)", ex2.problem,
            HeuristicKind::kSolution2);

  workload::RandomProblemParams params;
  params.dag.operations = 14;
  params.arch_kind = workload::ArchKind::kBus;
  params.processors = 5;
  params.failures_to_tolerate = 2;
  params.seed = 3;
  const workload::OwnedProblem cycab = workload::random_problem(params);
  run_table("synthetic 5-processor bus (K=2, solution 1)", cycab.problem,
            HeuristicKind::kSolution1);

  bench::section("expectation");
  bench::value("shape",
               "fault tolerance cuts the per-iteration loss probability by "
               "one to three orders of magnitude at realistic p; the "
               "guaranteed bound tracks the exact figure from below");
  return 0;
}
