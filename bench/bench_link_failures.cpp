// X2 (extension — the paper's §8 future work): communication link
// failures. Measures, across topologies, (a) how many single-link deaths a
// schedule survives, (b) what the disjoint-routing hardening of solution 2
// buys and costs. Every cell: 15 seeds, K=1, 15-operation DAGs.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;
using workload::ArchKind;
using workload::RandomProblemParams;

namespace {

constexpr int kSeeds = 15;

struct Cell {
  int masked = 0;        // single-link deaths masked
  int total = 0;         // links tested
  double makespan = 0;   // mean
  int feasible = 0;
};

Cell survey(ArchKind arch, std::size_t processors, HeuristicKind kind,
            bool disjoint) {
  Cell cell;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    RandomProblemParams params;
    params.dag.operations = 15;
    params.dag.width = 4;
    params.arch_kind = arch;
    params.processors = processors;
    params.failures_to_tolerate = 1;
    params.ccr = 0.6;
    params.seed = static_cast<std::uint64_t>(seed) * 977;
    const workload::OwnedProblem ex = workload::random_problem(params);
    SchedulerOptions options;
    options.disjoint_comm_routes = disjoint;
    const auto result = schedule(ex.problem, kind, options);
    if (!result.has_value()) continue;
    ++cell.feasible;
    cell.makespan += result->makespan();
    const Simulator simulator(result.value());
    for (const Link& link : ex.problem.architecture->links()) {
      FailureScenario scenario;
      scenario.failed_links_at_start = {link.id};
      ++cell.total;
      cell.masked +=
          simulator.run(scenario).all_outputs_produced ? 1 : 0;
    }
  }
  if (cell.feasible > 0) cell.makespan /= cell.feasible;
  return cell;
}

void row(std::vector<std::vector<std::string>>& table, const char* label,
         ArchKind arch, std::size_t processors, HeuristicKind kind,
         bool disjoint) {
  const Cell cell = survey(arch, processors, kind, disjoint);
  char pct[32];
  std::snprintf(pct, sizeof pct, "%.0f%%",
                cell.total ? 100.0 * cell.masked / cell.total : 0.0);
  table.push_back({label,
                   std::to_string(cell.masked) + "/" +
                       std::to_string(cell.total),
                   pct, time_to_string(cell.makespan)});
}

}  // namespace

int main() {
  bench::header("X2", "single link failures (K=1, 15 seeds per row)");

  bench::section("masking rate of one dead link, by strategy");
  std::vector<std::vector<std::string>> table;
  table.push_back({"strategy / topology", "masked", "rate", "mean makespan"});
  row(table, "sol1, single bus (5p)", ArchKind::kBus, 5,
      HeuristicKind::kSolution1, false);
  row(table, "sol2, full P2P (4p)", ArchKind::kFullyConnected, 4,
      HeuristicKind::kSolution2, false);
  row(table, "sol2, ring (5p), shortest", ArchKind::kRing, 5,
      HeuristicKind::kSolution2, false);
  row(table, "sol2, ring (5p), disjoint", ArchKind::kRing, 5,
      HeuristicKind::kSolution2, true);
  row(table, "sol2, star (5p), shortest", ArchKind::kStar, 5,
      HeuristicKind::kSolution2, false);
  row(table, "sol2, star (5p), disjoint", ArchKind::kStar, 5,
      HeuristicKind::kSolution2, true);
  std::fputs(render_table(table).c_str(), stdout);

  bench::section("expectation");
  bench::value("shape",
               "a single bus is a single point of failure (0%); a full mesh "
               "masks everything for free; on a ring, disjoint routing lifts "
               "masking from ~80% to 100% at a few percent makespan cost; a "
               "star masks single link deaths even with shortest routing, "
               "because cutting a leaf's only link is equivalent to that "
               "leaf failing — which K=1 already covers");
  return 0;
}
