// Shared helpers for the figure/table reproduction benchmarks: consistent
// headers and paper-vs-measured comparison lines for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "core/time.hpp"

namespace ftsched::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// One paper-vs-measured line. `note` explains deviations.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& note = {}) {
  std::printf("%-38s paper=%-8s measured=%-8s %s\n", what.c_str(),
              time_to_string(paper).c_str(), time_to_string(measured).c_str(),
              note.c_str());
}

inline void value(const std::string& what, const std::string& v) {
  std::printf("%-38s %s\n", what.c_str(), v.c_str());
}

}  // namespace ftsched::bench
