// Shared helpers for the figure/table reproduction benchmarks: consistent
// headers, paper-vs-measured comparison lines for EXPERIMENTS.md, and the
// BENCH_*.json machine-readable result files CI archives for trend plots.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "obs/json_util.hpp"

namespace ftsched::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// One paper-vs-measured line. `note` explains deviations.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& note = {}) {
  std::printf("%-38s paper=%-8s measured=%-8s %s\n", what.c_str(),
              time_to_string(paper).c_str(), time_to_string(measured).c_str(),
              note.c_str());
}

inline void value(const std::string& what, const std::string& v) {
  std::printf("%-38s %s\n", what.c_str(), v.c_str());
}

/// One measured configuration of a performance benchmark. `params` is a
/// free-form "key=value;key=value" string (kept flat so downstream tooling
/// can diff files without schema knowledge); `wall_ms` is the mean
/// wall-clock time of one iteration. `derived` holds additional numeric
/// fields emitted verbatim into the JSON object (throughput rates, scaling
/// ratios, hardware_threads) so compare_bench.py can gate on rates
/// directly instead of re-deriving them.
struct BenchRecord {
  std::string name;
  std::string params;
  double wall_ms = 0.0;
  std::uint64_t iters = 0;
  std::vector<std::pair<std::string, double>> derived;
};

[[nodiscard]] inline std::string bench_json(
    const std::vector<BenchRecord>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out += "  {\"name\": " + obs::json_string(r.name) +
           ", \"params\": " + obs::json_string(r.params) +
           ", \"wall_ms\": " + obs::json_number(r.wall_ms) +
           ", \"iters\": " + obs::json_number(r.iters);
    for (const auto& [key, val] : r.derived) {
      out += ", " + obs::json_string(key) + ": " + obs::json_number(val);
    }
    out += "}";
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

/// Writes records to `default_path`, or to $FTSCHED_BENCH_OUT when set
/// (google-benchmark owns the CLI flags, so the override is an env var).
inline bool write_bench_json(const std::string& default_path,
                             const std::vector<BenchRecord>& records) {
  const char* env = std::getenv("FTSCHED_BENCH_OUT");
  const std::string path = env != nullptr && *env != '\0' ? env : default_path;
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << bench_json(records);
  std::fprintf(stderr, "wrote %s (%zu records)\n", path.c_str(),
               records.size());
  return true;
}

}  // namespace ftsched::bench
