// certifyd service throughput: requests/sec through the line protocol for
// cold submissions (full certification per request) versus warm
// submissions answered from the plan-key result cache, plus the raw
// shard-stream + merge path. Emits BENCH_service.json for the CI trend
// archive. Exit status 1 if the cache does not answer warm requests or a
// served certificate diverges from offline certify().
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "campaign/certify.hpp"
#include "io/problem_format.hpp"
#include "obs/json_util.hpp"
#include "sched/heuristics.hpp"
#include "service/server.hpp"
#include "service/shard.hpp"
#include "service/stream.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// data/certify_k2.ft equivalent: 10-op DAG, 4 processors, K=2.
workload::OwnedProblem k2_problem() {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.processors = 4;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  return workload::random_problem(params);
}

std::string submit_line(const std::string& id, const std::string& problem) {
  return "{\"type\":\"submit\",\"id\":" + obs::json_string(id) +
         ",\"problem_inline\":" + obs::json_string(problem) + "}";
}

/// Requests/sec of `count` submissions of the same plan through a fresh
/// or warmed service. Returns 0 on protocol failure.
double measure_requests(service::CertifyService& service,
                        const std::string& problem, int count,
                        const char* tag, bool& ok) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < count; ++i) {
    service::StringSink sink;
    const std::string id = std::string(tag) + std::to_string(i);
    if (!service.handle_line(submit_line(id, problem), sink)) {
      ok = false;
      return 0;
    }
    if (sink.text().find("\"type\":\"result\"") == std::string::npos) {
      std::fprintf(stderr, "no result record for %s\n", id.c_str());
      ok = false;
      return 0;
    }
  }
  return count / seconds_since(start);
}

}  // namespace

int main() {
  bench::header("SERVICE", "certifyd line-protocol throughput");
  bool ok = true;
  std::vector<bench::BenchRecord> records;

  const workload::OwnedProblem ex = k2_problem();
  const std::string problem = io::write_problem(ex.problem);
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const campaign::CertifySpec spec;

  // Cold: every request is a distinct plan (cache capacity 0 disables the
  // cache so each submission certifies from scratch).
  bench::section("cold submissions (cache disabled)");
  {
    service::ServeOptions options;
    options.cache_capacity = 0;
    options.progress = false;
    service::CertifyService cold(options);
    constexpr int kCold = 20;
    const auto start = std::chrono::steady_clock::now();
    const double rps = measure_requests(cold, problem, kCold, "c", ok);
    bench::value("requests/sec", std::to_string(rps));
    records.push_back({"service_cold", "requests=20;cache=0",
                       seconds_since(start) / kCold * 1e3,
                       static_cast<std::uint64_t>(kCold), {}});
    if (cold.stats().cache_hits != 0) {
      std::fprintf(stderr, "disabled cache reported hits\n");
      ok = false;
    }
  }

  // Warm: one miss then cache hits — the steady state of a long-lived
  // daemon re-certifying isomorphic plans.
  bench::section("warm submissions (plan-key cache)");
  {
    service::ServeOptions options;
    options.progress = false;
    service::CertifyService warm(options);
    constexpr int kWarm = 200;
    const auto start = std::chrono::steady_clock::now();
    const double rps = measure_requests(warm, problem, kWarm, "w", ok);
    bench::value("requests/sec", std::to_string(rps));
    records.push_back({"service_warm", "requests=200;cache=64",
                       seconds_since(start) / kWarm * 1e3,
                       static_cast<std::uint64_t>(kWarm), {}});
    if (warm.stats().cache_hits != kWarm - 1) {
      std::fprintf(stderr, "expected %d cache hits, saw %llu\n", kWarm - 1,
                   static_cast<unsigned long long>(warm.stats().cache_hits));
      ok = false;
    }
  }

  // Shard + merge: the distributed path — stream 4 worker shards, merge,
  // and byte-check against the single-process certificate.
  bench::section("4-way shard stream + merge");
  {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::string> streams;
    for (std::size_t i = 0; i < 4; ++i) {
      service::StringSink sink;
      const service::StreamShardResult result = service::certify_stream(
          schedule, spec, campaign::CertifyShardSpec{i, 4}, sink);
      if (!result.completed) ok = false;
      streams.push_back(sink.text());
    }
    const auto merged = service::merge_streams(schedule, spec, streams);
    const double elapsed = seconds_since(start);
    if (!merged.has_value()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   merged.error().message.c_str());
      ok = false;
    } else {
      const campaign::CertifyReport offline = campaign::certify(schedule, spec);
      const ArchitectureGraph& arch = *ex.problem.architecture;
      if (merged.value().to_json(arch) != offline.to_json(arch)) {
        std::fprintf(stderr, "sharded certificate diverges from offline\n");
        ok = false;
      }
      bench::value("wall_ms", std::to_string(elapsed * 1e3));
      bench::value("branches", std::to_string(merged.value().branches));
    }
    records.push_back({"service_shard_merge", "shards=4", elapsed * 1e3, 1, {}});
  }

  if (!bench::write_bench_json("BENCH_service.json", records)) ok = false;
  return ok ? 0 : 1;
}
