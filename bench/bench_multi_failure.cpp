// S2 (§5.6 criterion 2): several failures within one iteration. Solution 2
// supports simultaneous failures gracefully (no pending timeouts to
// accumulate); solution 1 survives but pays the accumulated watch chains
// (§6.6: "the arrival of several failures at the same time is not well
// supported"). We measure masking rate and mean response-time stretch over
// every failure pattern of each size.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;
using workload::ArchKind;
using workload::RandomProblemParams;

namespace {

struct Outcome {
  int masked = 0;
  int total = 0;
  double stretch = 0;  // mean response / nominal response over masked runs
};

Outcome inject(const Schedule& schedule, std::size_t simultaneous) {
  const Simulator simulator(schedule);
  const Time nominal = simulator.run().response_time;
  Outcome outcome;
  for (const auto& subset :
       failure_subsets(schedule.problem().architecture->processor_count(),
                       simultaneous)) {
    if (subset.size() != simultaneous) continue;
    // All members crash together mid-iteration: the hardest instant.
    FailureScenario scenario;
    for (ProcessorId proc : subset) {
      scenario.events.push_back(
          FailureEvent{proc, schedule.makespan() / 2});
    }
    const IterationResult run = simulator.run(scenario);
    ++outcome.total;
    if (run.all_outputs_produced) {
      ++outcome.masked;
      outcome.stretch += run.response_time / nominal;
    }
  }
  if (outcome.masked > 0) outcome.stretch /= outcome.masked;
  return outcome;
}

void run_table(const char* title, HeuristicKind kind, ArchKind arch, int k) {
  bench::section(title);
  RandomProblemParams params;
  params.dag.operations = 16;
  params.arch_kind = arch;
  params.processors = 5;
  params.failures_to_tolerate = k;
  params.ccr = 0.5;
  params.seed = 17;
  const workload::OwnedProblem ex = workload::random_problem(params);
  const auto result = schedule(ex.problem, kind);
  if (!result.has_value()) {
    bench::value("infeasible", result.error().message);
    return;
  }
  std::vector<std::vector<std::string>> table;
  table.push_back({"simultaneous failures", "masked", "mean stretch"});
  for (std::size_t f = 1; f <= static_cast<std::size_t>(k) + 1; ++f) {
    const Outcome outcome = inject(result.value(), f);
    char stretch[32];
    std::snprintf(stretch, sizeof stretch, "%.2fx", outcome.stretch);
    table.push_back({std::to_string(f),
                     std::to_string(outcome.masked) + "/" +
                         std::to_string(outcome.total),
                     outcome.masked ? stretch : "-"});
  }
  std::fputs(render_table(table).c_str(), stdout);
}

}  // namespace

int main() {
  bench::header("S2", "simultaneous failures within one iteration (K=2)");
  run_table("solution 1, 5-processor bus", HeuristicKind::kSolution1,
            ArchKind::kBus, 2);
  run_table("solution 2, 5-processor full P2P", HeuristicKind::kSolution2,
            ArchKind::kFullyConnected, 2);

  bench::section("paper expectation");
  bench::value("shape",
               "both mask every pattern up to K and may lose outputs beyond "
               "K; solution 1's stretch grows with the failure count "
               "(accumulated timeouts) while solution 2's stays near 1");
  return 0;
}
