// X3 (extension — §5.3's open question): the software/time redundancy
// trade-off curve. For each strategy we report both sides of the paper's
// tension: the failure-free makespan (what replicated comms cost every
// iteration) and the worst single-failure transient response (what timeout
// chains cost when a processor dies). The hybrid search walks between the
// two extremes under a failure-free budget.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "tuning/hybrid.hpp"
#include "workload/random_arch.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

namespace {

void add_row(std::vector<std::vector<std::string>>& table, const char* name,
             const Schedule& schedule) {
  const TransientReport transient = analyze_transient(schedule);
  const ScheduleMetrics metrics = compute_metrics(schedule);
  char stretch[32];
  std::snprintf(stretch, sizeof stretch, "%.2fx",
                transient.worst_stretch());
  table.push_back(
      {name, time_to_string(schedule.makespan()),
       time_to_string(transient.worst_response), stretch,
       std::to_string(schedule.active_comm_dep_count()) + "/" +
           std::to_string(
               schedule.problem().algorithm->dependency_count()),
       std::to_string(metrics.inter_processor_comms)});
}

void run_case(const char* title, const Problem& problem) {
  bench::section(title);
  std::vector<std::vector<std::string>> table;
  table.push_back({"strategy", "makespan", "worst transient",
                   "worst stretch", "active deps", "transfers"});

  add_row(table, "solution 1 (all passive)",
          schedule_solution1(problem).value());
  for (const double budget : {1.05, 1.15, 1.30}) {
    HybridOptions options;
    options.max_overhead_factor = budget;
    const auto hybrid = schedule_hybrid(problem, options);
    if (hybrid.has_value()) {
      char name[48];
      std::snprintf(name, sizeof name, "hybrid (budget %.0f%%)",
                    100 * (budget - 1));
      add_row(table, name, hybrid->schedule);
    }
  }
  add_row(table, "solution 2 (all active)",
          schedule_solution2(problem).value());
  std::fputs(render_table(table).c_str(), stdout);
}

}  // namespace

int main() {
  bench::header("X3", "software vs time redundancy trade-off (§5.3)");

  const workload::OwnedProblem ex2 = workload::paper_example2();
  run_case("paper example 2 (P2P, K=1)", ex2.problem);

  workload::RandomProblemParams params;
  params.dag.operations = 16;
  params.dag.width = 4;
  params.arch_kind = workload::ArchKind::kFullyConnected;
  params.processors = 4;
  params.failures_to_tolerate = 1;
  params.ccr = 0.8;
  params.seed = 42;
  const workload::OwnedProblem synthetic = workload::random_problem(params);
  run_case("synthetic 16-op DAG (full P2P, K=1, ccr 0.8)",
           synthetic.problem);

  bench::section("expectation");
  bench::value("shape",
               "solution 1 anchors the worst transient column, solution 2 "
               "the best; the hybrid buys back part of the gap by flipping "
               "the bottleneck dependencies to active replication, then "
               "plateaus once the residual worst case is the degraded "
               "critical path itself — which no per-dependency comm policy "
               "can shorten, only solution 2's different placements can");
  return 0;
}
