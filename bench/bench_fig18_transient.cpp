// F18: execution of the solution-1 schedule when P2 crashes (example 1).
// (a) the transient iteration in which the failure occurs: backups detect
//     the silence through their timeout chains, elections follow, the
//     response time stretches by the accumulated waits;
// (b) the subsequent iterations: every healthy processor knows P2 is dead,
//     nothing waits, and — per §6.4 — the number of inter-processor
//     transfers does not exceed the failure-free count.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("F18", "solution 1 under a P2 crash, example 1");

  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Simulator simulator(schedule);
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");

  const IterationResult nominal = simulator.run();
  // P2 crashes right after computing A (it finishes A at t=3).
  const IterationResult transient =
      simulator.run(FailureScenario::crash(p2, 3.2));
  const IterationResult subsequent =
      simulator.run(FailureScenario::dead_from_start({p2}));

  bench::section("(a) transient iteration trace (P2 crashes at t=3.2)");
  std::fputs(transient.trace
                 .to_text(*ex.problem.algorithm, *ex.problem.architecture)
                 .c_str(),
             stdout);

  bench::section("(b) subsequent iteration trace (P2 known dead)");
  std::fputs(subsequent.trace
                 .to_text(*ex.problem.algorithm, *ex.problem.architecture)
                 .c_str(),
             stdout);

  bench::section("paper-vs-measured");
  bench::value("outputs produced (transient)",
               transient.all_outputs_produced ? "yes" : "NO");
  bench::value("outputs produced (subsequent)",
               subsequent.all_outputs_produced ? "yes" : "NO");
  bench::compare("failure-free response time", 8.1, nominal.response_time);
  bench::value("transient response time",
               time_to_string(transient.response_time) +
                   "  (waiting delay for the faulty processor, Fig. 18a)");
  bench::value("subsequent response time",
               time_to_string(subsequent.response_time) +
                   "  (no timeouts once detected, Fig. 18b)");
  bench::value("timeouts fired (transient)",
               std::to_string(transient.trace.count(TraceEvent::Kind::kTimeout)));
  bench::value("timeouts fired (subsequent)",
               std::to_string(subsequent.trace.count(TraceEvent::Kind::kTimeout)));
  bench::value(
      "transfers nominal/transient/subseq",
      std::to_string(nominal.trace.count(TraceEvent::Kind::kTransferStart)) +
          "/" +
          std::to_string(
              transient.trace.count(TraceEvent::Kind::kTransferStart)) +
          "/" +
          std::to_string(
              subsequent.trace.count(TraceEvent::Kind::kTransferStart)) +
          "  (§6.4: no growth after failure)");
  const bool ok = transient.all_outputs_produced &&
                  subsequent.all_outputs_produced &&
                  subsequent.trace.count(TraceEvent::Kind::kTransferStart) <=
                      nominal.trace.count(TraceEvent::Kind::kTransferStart);
  return ok ? 0 : 1;
}
