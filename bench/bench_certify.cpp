// Certification engine throughput: certified branches/sec of the
// shared-prefix forking certifier versus the naive from-scratch replay of
// the exact same branch set, over the paper's Fig. 17 / Fig. 22 schedules
// and a random-DAG matrix. The headline claim gated here (and by the CI
// perf job via BENCH_certify.json): forking + exact dedup certify at
// >= 3x the from-scratch rate. Exit status 1 if the aggregate speedup
// falls short or any certification result is wrong.
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "campaign/certify.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "tuning/hybrid.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

FailureScenario branch_scenario(const campaign::CertifyBranch& branch) {
  FailureScenario scenario;
  scenario.failed_at_start = branch.dead_at_start;
  scenario.events = branch.crashes;
  return scenario;
}

struct Config {
  std::string name;
  Schedule schedule;
  bool expect_certified = true;
};

struct Measurement {
  double replay_seconds = 0;
  double fork_seconds = 0;
  std::size_t replay_branches = 0;
  std::size_t fork_branches = 0;
};

/// Measures one config `reps` times and keeps the best (least-noisy) run
/// of each mode. The replay baseline simulates the naive enumerator's own
/// branch list from t=0 — identical coverage, no prefix sharing, no dedup.
Measurement measure(const Config& config, int reps, bool& ok) {
  campaign::CertifySpec naive;
  naive.dedup = false;
  naive.collect_branches = true;
  naive.threads = 1;
  campaign::CertifySpec pruned;
  pruned.threads = 1;

  const Simulator simulator(config.schedule);
  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    const campaign::CertifyReport full =
        campaign::certify(config.schedule, naive);
    const campaign::CertifyReport fast =
        campaign::certify(config.schedule, pruned);
    ok = ok && full.certified == config.expect_certified &&
         fast.certified == config.expect_certified;

    const auto start = std::chrono::steady_clock::now();
    for (const campaign::CertifyBranch& branch : full.branches_list) {
      const IterationResult run =
          simulator.run(branch_scenario(branch));
      ok = ok && run.all_outputs_produced != branch.outputs_lost;
    }
    const double replay = seconds_since(start);

    if (rep == 0 || replay < best.replay_seconds) {
      best.replay_seconds = replay;
      best.replay_branches = full.branches;
    }
    if (rep == 0 || fast.elapsed_seconds < best.fork_seconds) {
      best.fork_seconds = fast.elapsed_seconds;
      best.fork_branches = fast.branches;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::header("C2", "exhaustive certification vs from-scratch replay");

  // Problems must outlive the schedules built on them.
  std::deque<workload::OwnedProblem> owned;
  std::vector<Config> configs;
  owned.push_back(workload::paper_example1());
  configs.push_back(
      {"fig17_solution1", schedule_solution1(owned.back().problem).value(),
       true});
  owned.push_back(workload::paper_example2());
  configs.push_back(
      {"fig22_solution2", schedule_solution2(owned.back().problem).value(),
       true});
  // The §5.3 hybrid sits between the two solutions (passive base, a few
  // dependencies flipped active): its branch space differs from both, so
  // it exercises the certifier on a schedule shape neither paper figure
  // covers. It must certify its claimed K like any heuristic output.
  {
    const auto hybrid = schedule_hybrid(owned.back().problem);
    if (!hybrid.has_value()) {
      std::fprintf(stderr, "hybrid config failed to schedule: %s\n",
                   hybrid.error().message.c_str());
      return 1;
    }
    configs.push_back(
        {"fig22_hybrid", std::move(hybrid).value().schedule, true});
  }
  struct RandomCase {
    std::size_t operations;
    std::size_t processors;
    int k;
    std::uint64_t seed;
  };
  for (const RandomCase& rc : {RandomCase{12, 4, 1, 3},
                               RandomCase{16, 5, 1, 8},
                               RandomCase{10, 4, 2, 11}}) {
    workload::RandomProblemParams params;
    params.dag.operations = rc.operations;
    params.processors = rc.processors;
    params.failures_to_tolerate = rc.k;
    params.seed = rc.seed;
    owned.push_back(workload::random_problem(params));
    const auto scheduled = schedule_solution2(owned.back().problem);
    if (!scheduled.has_value()) {
      std::fprintf(stderr, "random config failed to schedule: %s\n",
                   scheduled.error().message.c_str());
      return 1;
    }
    configs.push_back({"random_n" + std::to_string(rc.operations) + "_p" +
                           std::to_string(rc.processors) + "_k" +
                           std::to_string(rc.k),
                       std::move(scheduled).value(), true});
  }

  bench::section("certified branches/sec, fork+dedup vs from-scratch replay");
  std::vector<bench::BenchRecord> records;
  bool ok = true;
  double replay_total = 0;
  double fork_total = 0;
  for (const Config& config : configs) {
    const Measurement m = measure(config, 5, ok);
    const double replay_rate =
        m.replay_seconds > 0
            ? static_cast<double>(m.replay_branches) / m.replay_seconds
            : 0;
    const double fork_rate =
        m.fork_seconds > 0
            ? static_cast<double>(m.fork_branches) / m.fork_seconds
            : 0;
    // Both runs certify the SAME coverage (dedup only merges provably
    // equivalent branches), so the speedup is the wall-time ratio.
    const double speedup =
        m.fork_seconds > 0 ? m.replay_seconds / m.fork_seconds : 0;
    std::printf(
        "%-22s replay %7zu br %8.0f br/s   fork %6zu br %8.0f br/s   "
        "speedup %5.2fx\n",
        config.name.c_str(), m.replay_branches, replay_rate, m.fork_branches,
        fork_rate, speedup);
    replay_total += m.replay_seconds;
    fork_total += m.fork_seconds;

    bench::BenchRecord replay;
    replay.name = "certify";
    replay.params = "config=" + config.name + ";mode=replay";
    replay.wall_ms = m.replay_seconds * 1e3;
    replay.iters = m.replay_branches;
    replay.derived.emplace_back("branches_per_s", replay_rate);
    records.push_back(std::move(replay));
    bench::BenchRecord fork;
    fork.name = "certify";
    fork.params = "config=" + config.name + ";mode=fork";
    fork.wall_ms = m.fork_seconds * 1e3;
    fork.iters = m.fork_branches;
    fork.derived.emplace_back("branches_per_s", fork_rate);
    fork.derived.emplace_back("speedup_vs_replay", speedup);
    records.push_back(std::move(fork));
  }

  // Aggregate speedup in certified coverage per unit time: total naive
  // replay wall over total fork wall (both cover the complete branch
  // space of every config).
  const double aggregate =
      fork_total > 0 ? replay_total / fork_total : 0;
  char line[64];
  std::snprintf(line, sizeof line, "%.2fx (gate: >= 3x)", aggregate);
  bench::value("aggregate certification speedup", line);
  bench::value("all certifications correct", ok ? "yes" : "NO");
  if (!bench::write_bench_json("BENCH_certify.json", records)) return 1;
  return ok && aggregate >= 3.0 ? 0 : 1;
}
