// F24: the non-fault-tolerant baseline on example 2 and the §7.4 overhead.
// Paper: baseline 8.0, overhead 8.9 - 8.0 = 0.9; ours: 8.3 and 1.1.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("F24", "non fault-tolerant schedule, example 2");

  const workload::OwnedProblem ex = workload::paper_example2();
  const Schedule base = schedule_base(ex.problem).value();
  const Schedule ft = schedule_solution2(ex.problem).value();
  const bool valid = validate(base).empty();

  bench::section("baseline schedule (Figure 24)");
  std::fputs(to_text(base).c_str(), stdout);
  bench::section("gantt");
  std::fputs(to_gantt(base).c_str(), stdout);

  bench::section("paper-vs-measured");
  bench::compare("baseline makespan (Fig. 24)", 8.0, base.makespan(),
                 "deterministic tie-breaks, see EXPERIMENTS.md");
  bench::compare("FT overhead (§7.4)", 0.9, overhead(ft, base),
                 "positive, around one time unit: shape holds");
  const ScheduleMetrics base_m = compute_metrics(base);
  const ScheduleMetrics ft_m = compute_metrics(ft);
  bench::value("comms baseline vs solution 2",
               std::to_string(base_m.inter_processor_comms) + " vs " +
                   std::to_string(ft_m.inter_processor_comms) +
                   "  (comm overhead is maximal, §7.4)");
  bench::value("validator", valid ? "clean" : "VIOLATIONS");
  return valid ? 0 : 1;
}
