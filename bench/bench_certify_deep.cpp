// Deep-budget certification: the pruning layer (exact instant dedup +
// digest memoization + slack cuts) versus the naive brute-force
// enumerator on the budget mixes the ROADMAP calls the combinatorial
// frontier. Two claims gated here (and by the CI perf job via
// BENCH_certify_deep.json):
//
//   1. The K=2 + S=1 mixed sweep on the paper's Fig. 22 schedule
//      simulates >= 10x fewer branches pruned than brute-forced
//      (branch_reduction = naive branches / pruned simulated branches,
//      where simulated = branches - memo replays - slack cuts).
//   2. Exhaustive K=3 certification completes, delivering the exact
//      verdict with full coverage: on example2 (3 processors, where the
//      model clamps the crash budget to N-1 = 2, so K=3 saturates the
//      admissible pattern space) crash-only, with a link failure, and
//      with a silence window; and on the CI K=2 random workload
//      (4 bus-connected processors, certify_k2.ft's generator) where
//      K=3 binds for real.
//
// Pruning is verdict-exact (certificates are byte-diffed ON-vs-OFF in
// CI); this bench additionally cross-checks the verdict and the total
// counterexample count between every pruned sweep and its naive/unpruned
// twin where the twin is feasible. Exit status 1 on any mismatch or if
// the reduction falls short of the 10x gate.
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "campaign/certify.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;

namespace {

struct Budgets {
  int k = 0;
  int l = 0;
  int s = 0;
};

campaign::CertifyReport sweep(const Schedule& schedule, Budgets budgets,
                              bool dedup, bool prune) {
  campaign::CertifySpec spec;
  spec.max_failures = budgets.k;
  spec.max_link_failures = budgets.l;
  spec.max_silences = budgets.s;
  spec.dedup = dedup;
  spec.prune = prune;
  spec.threads = 1;
  return campaign::certify(schedule, spec);
}

std::size_t simulated(const campaign::CertifyReport& report) {
  return report.branches - report.memo_branches_replayed - report.slack_cuts;
}

/// Same exhaustive question, same answer. Sweeps differing only in prune
/// must agree branch for branch (counterexample counts included — that is
/// the byte-identity contract); the dedup=off twin enumerates merged-away
/// representatives too, so against it only the verdict is comparable.
bool agree(const campaign::CertifyReport& a, const campaign::CertifyReport& b) {
  const bool same_enumeration = a.branches == b.branches;
  return a.certified == b.certified &&
         (!same_enumeration || a.total_counterexamples == b.total_counterexamples);
}

bench::BenchRecord record(const std::string& config, const std::string& mode,
                          const campaign::CertifyReport& report) {
  bench::BenchRecord r;
  r.name = "certify_deep";
  r.params = "config=" + config + ";mode=" + mode;
  r.wall_ms = report.elapsed_seconds * 1e3;
  r.iters = report.branches;
  r.derived.emplace_back("simulated_branches",
                         static_cast<double>(simulated(report)));
  r.derived.emplace_back("memo_replayed",
                         static_cast<double>(report.memo_branches_replayed));
  r.derived.emplace_back("slack_cuts", static_cast<double>(report.slack_cuts));
  r.derived.emplace_back("certified", report.certified ? 1.0 : 0.0);
  return r;
}

}  // namespace

int main() {
  bench::header("C3", "deep-budget certification: pruned vs brute force");

  const workload::OwnedProblem example2 = workload::paper_example2();
  const Schedule schedule = schedule_solution2(example2.problem).value();
  std::vector<bench::BenchRecord> records;
  bool ok = true;

  // --- Gate 1: K=2 + S=1 branch reduction -------------------------------
  bench::section("K=2 + S=1 mixed sweep, brute force vs pruned");
  const Budgets mixed{2, 0, 1};
  // The naive enumerator simulates every representative branch from
  // scratch; one rep is plenty — the gate is a branch count, not a timing.
  const campaign::CertifyReport naive =
      sweep(schedule, mixed, /*dedup=*/false, /*prune=*/false);
  campaign::CertifyReport pruned =
      sweep(schedule, mixed, /*dedup=*/true, /*prune=*/true);
  for (int rep = 1; rep < 2; ++rep) {
    campaign::CertifyReport again =
        sweep(schedule, mixed, /*dedup=*/true, /*prune=*/true);
    if (again.elapsed_seconds < pruned.elapsed_seconds)
      pruned = std::move(again);
  }
  ok = ok && agree(naive, pruned);
  const double reduction =
      simulated(pruned) > 0
          ? static_cast<double>(naive.branches) / simulated(pruned)
          : 0.0;
  const double wall_speedup = pruned.elapsed_seconds > 0
                                  ? naive.elapsed_seconds / pruned.elapsed_seconds
                                  : 0.0;
  std::printf(
      "naive   %8zu branches simulated                       %6.2fs\n"
      "pruned  %8zu branches = %zu enum - %zu memo - %zu slack  %6.2fs\n",
      naive.branches, naive.elapsed_seconds, simulated(pruned), pruned.branches,
      pruned.memo_branches_replayed, pruned.slack_cuts, pruned.elapsed_seconds);
  char line[80];
  std::snprintf(line, sizeof line, "%.1fx (gate: >= 10x), wall %.1fx", reduction,
                wall_speedup);
  bench::value("simulated-branch reduction", line);

  records.push_back(record("fig22_k2s1", "naive", naive));
  bench::BenchRecord gate = record("fig22_k2s1", "pruned", pruned);
  gate.derived.emplace_back("branch_reduction", reduction);
  gate.derived.emplace_back("wall_speedup_vs_naive", wall_speedup);
  records.push_back(std::move(gate));

  // --- Gate 2: exhaustive K=3 certification completes -------------------
  bench::section("exhaustive K=3 sweeps (pruned)");
  const std::deque<std::pair<std::string, Budgets>> deep = {
      {"fig22_k3", Budgets{3, 0, 0}},
      {"fig22_k3l1", Budgets{3, 1, 0}},
      {"fig22_k3s1", Budgets{3, 0, 1}},
  };
  for (const auto& [config, budgets] : deep) {
    const campaign::CertifyReport report =
        sweep(schedule, budgets, /*dedup=*/true, /*prune=*/true);
    // The crash-only K=3 tree is small enough to re-certify unpruned as a
    // verdict cross-check; the mixed trees are covered by the CI byte-diff
    // at K=2 and by gate 1's naive twin.
    if (budgets.l == 0 && budgets.s == 0) {
      ok = ok &&
           agree(report, sweep(schedule, budgets, /*dedup=*/true,
                               /*prune=*/false));
    }
    std::printf(
        "%-12s K=%d L=%d S=%d verdict=%-8s %8zu enum %8zu simulated %6.2fs\n",
        config.c_str(), budgets.k, budgets.l, budgets.s,
        report.certified ? "certified" : "refuted", report.branches,
        simulated(report), report.elapsed_seconds);
    records.push_back(record(config, "pruned", report));
  }

  // Example2 has 3 processors, so its crash budget clamps at 2; rerun the
  // crash-only K=3 on the CI random workload (4 bus-connected processors,
  // the certify_k2.ft generator) where every crash triple is admissible.
  {
    workload::RandomProblemParams params;
    params.dag.operations = 10;
    params.processors = 4;
    params.failures_to_tolerate = 2;
    params.seed = 11;
    const workload::OwnedProblem random4 = workload::random_problem(params);
    const Schedule random_schedule =
        schedule_solution2(random4.problem).value();
    const Budgets k3{3, 0, 0};
    const campaign::CertifyReport report =
        sweep(random_schedule, k3, /*dedup=*/true, /*prune=*/true);
    std::printf(
        "%-12s K=%d L=%d S=%d verdict=%-8s %8zu enum %8zu simulated %6.2fs\n",
        "random_p4_k3", k3.k, k3.l, k3.s,
        report.certified ? "certified" : "refuted", report.branches,
        simulated(report), report.elapsed_seconds);
    records.push_back(record("random_p4_k3", "pruned", report));
  }

  // --- Slack cuts in action ---------------------------------------------
  // The memo carries the deep sweeps above (solution2's replicated sends
  // admit no airtight static tail, so its slack table is empty by
  // construction); the slack cut's home turf is a tight response bound on
  // an unreplicated schedule. Example1's base schedule, two silence
  // windows, bound at half the makespan, cap 2: provably-late closing
  // edges are counted without simulation, certificate unchanged (pinned
  // byte-identical by prune_test).
  bench::section("slack cuts: tight bound, silence-only sweep (fig17 base)");
  {
    const workload::OwnedProblem example1 = workload::paper_example1();
    const Schedule base = schedule_base(example1.problem).value();
    campaign::CertifySpec spec;
    spec.max_silences = 2;
    spec.response_bound = base.makespan() * 0.5;
    spec.max_counterexamples = 2;
    spec.prune = true;
    spec.threads = 1;
    const campaign::CertifyReport report = campaign::certify(base, spec);
    ok = ok && report.slack_cuts > 0;
    std::printf(
        "fig17_base_s2 S=2 bound=mk/2 %8zu enum %8zu simulated (%zu slack "
        "cuts) %5.2fs\n",
        report.branches, simulated(report), report.slack_cuts,
        report.elapsed_seconds);
    records.push_back(record("fig17_base_s2", "pruned", report));
  }

  bench::value("verdicts exact (pruned == naive)", ok ? "yes" : "NO");
  if (!bench::write_bench_json("BENCH_certify_deep.json", records)) return 1;
  return ok && reduction >= 10.0 ? 0 : 1;
}
