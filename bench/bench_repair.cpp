// Counterexample-guided repair throughput: wall time and replay-cache
// leverage of the full refute → repair → re-certify loop on the committed
// refuted workload (the K=2 bus problem judged under K=1 + one link
// death). Reports rounds, moves, branches certified, and the confirmation
// sweep's leaves-reused fraction; writes BENCH_repair.json for trend
// plots. Not baseline-gated — exit 1 only when a result is wrong (the
// loop fails to converge or the cache shows zero reuse).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "campaign/repair.hpp"
#include "sched/heuristics.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

workload::OwnedProblem k2_bus_problem() {
  workload::RandomProblemParams params;
  params.dag.operations = 10;
  params.processors = 4;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  return workload::random_problem(params);
}

}  // namespace

int main() {
  bench::header("bench_repair",
                "counterexample-guided repair loop (refute -> repair -> "
                "re-certify)");

  const workload::OwnedProblem ex = k2_bus_problem();
  bool ok = true;
  std::vector<bench::BenchRecord> records;

  for (const unsigned threads : {1u, 0u}) {
    campaign::RepairSpec spec;
    spec.certify.max_failures = 1;
    spec.certify.max_link_failures = 1;
    spec.certify.threads = threads;

    const int reps = 3;
    double best = -1;
    campaign::RepairReport report;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      report = campaign::repair(ex.problem, HeuristicKind::kSolution2, spec);
      const double elapsed = seconds_since(start);
      if (best < 0 || elapsed < best) best = elapsed;
    }
    ok = ok && report.certified && report.confirmation.has_value() &&
         report.confirmation->leaves_reused > 0;

    std::size_t branches = 0;
    for (const campaign::RepairRound& round : report.rounds) {
      branches += round.branches;
    }
    const double reuse =
        report.confirmation.has_value() && report.confirmation->branches > 0
            ? static_cast<double>(report.confirmation->leaves_reused) /
                  static_cast<double>(report.confirmation->branches)
            : 0.0;

    const std::string label =
        threads == 1 ? "repair_k1_l1_t1" : "repair_k1_l1_auto";
    bench::section(label);
    bench::value("certified", report.certified ? "yes" : "no");
    bench::value("rounds", std::to_string(report.rounds.size()));
    bench::value("branches certified", std::to_string(branches));
    bench::value("cache entries", std::to_string(report.cache_entries));
    bench::value("confirmation reuse",
                 std::to_string(reuse * 100.0).substr(0, 5) + " %");
    bench::value("wall seconds (best of 3)", std::to_string(best));

    bench::BenchRecord record;
    record.name = label;
    record.params = "workload=k2_bus;claim_k=1;claim_l=1;threads=" +
                    std::to_string(threads) +
                    ";rounds=" + std::to_string(report.rounds.size()) +
                    ";branches=" + std::to_string(branches);
    record.wall_ms = best * 1000.0;
    record.iters = 1;
    records.push_back(record);
  }

  if (!bench::write_bench_json("BENCH_repair.json", records)) ok = false;
  if (!ok) {
    std::fprintf(stderr, "bench_repair: FAILED correctness check\n");
    return 1;
  }
  std::printf("\nbench_repair: OK\n");
  return 0;
}
