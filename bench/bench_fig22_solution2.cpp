// F22: solution 2 on example 2 (fully connected point-to-point, K=1): the
// fault-tolerant schedule with actively replicated communications. Paper's
// Figure 22 reads 8.9; our deterministic tie-breaks give 9.4 (same inputs,
// unreadable published figure) — the §7.4 overhead stays sub-unit and the
// no-timeout property is exact.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("F22", "solution 2 fault-tolerant schedule, example 2");

  const workload::OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const bool valid = validate(schedule).empty();

  bench::section("final schedule (Figure 22)");
  std::fputs(to_text(schedule).c_str(), stdout);
  bench::section("gantt");
  std::fputs(to_gantt(schedule).c_str(), stdout);

  bench::section("paper-vs-measured");
  bench::compare("makespan (Fig. 22)", 8.9, schedule.makespan(),
                 "deterministic tie-breaks, see EXPERIMENTS.md");
  const ScheduleMetrics metrics = compute_metrics(schedule);
  bench::value("replicas", std::to_string(metrics.replicas) + " (7 ops x 2)");
  bench::value("active inter-processor comms",
               std::to_string(metrics.inter_processor_comms) +
                   "  (redundant sends run in parallel, §7.1)");
  bench::value("passive comms", std::to_string(metrics.passive_comms) +
                                    "  (solution 2 has none)");
  bench::value("validator", valid ? "clean" : "VIOLATIONS");
  return valid ? 0 : 1;
}
