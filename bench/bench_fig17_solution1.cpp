// F14-F17: solution 1 on example 1 (bus, K=1). Reproduces the intermediate
// checkpoints the paper states in prose (Figures 14-16) and the final
// fault-tolerant schedule of Figure 17, then compares against the paper's
// anchors: B completes at 4.5 on P2 / 5 on P3 / would be 6 on P1; final
// makespan 9.4.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main() {
  bench::header("F17", "solution 1 fault-tolerant schedule, example 1");

  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const bool valid = validate(schedule).empty();

  bench::section("final schedule (Figure 17)");
  std::fputs(to_text(schedule).c_str(), stdout);
  bench::section("gantt");
  std::fputs(to_gantt(schedule).c_str(), stdout);

  bench::section("paper-vs-measured");
  const AlgorithmGraph& graph = *ex.problem.algorithm;
  const ProcessorId p2 = ex.problem.architecture->find_processor("P2");
  const ProcessorId p3 = ex.problem.architecture->find_processor("P3");
  const OperationId b = graph.find_operation("B");
  bench::compare("makespan (Fig. 17)", 9.4, schedule.makespan());
  bench::compare("B main completion on P2 (Fig. 15)", 4.5,
                 schedule.replica_on(b, p2)->end);
  bench::compare("B backup completion on P3 (Fig. 15)", 5.0,
                 schedule.replica_on(b, p3)->end);
  const ScheduleMetrics metrics = compute_metrics(schedule);
  bench::value("replicas", std::to_string(metrics.replicas) + " (7 ops x 2)");
  bench::value("active inter-processor comms",
               std::to_string(metrics.inter_processor_comms));
  bench::value("passive backup comms (OpComm)",
               std::to_string(metrics.passive_comms));
  bench::value("validator", valid ? "clean" : "VIOLATIONS");
  return valid ? 0 : 1;
}
