// schedule_tool: a standalone command-line front end — read a problem file
// (the SynDEx-style format of io/problem_format.hpp), run a heuristic, and
// emit the schedule in the requested form. Composes into shell pipelines:
//
//   ./schedule_tool problem.ft --solution1 --gantt
//   ./schedule_tool problem.ft --solution2 --json > schedule.json
//   ./schedule_tool problem.ft --base --csv | column -t -s,
//   ./schedule_tool --example1 --solution1 --exec   # built-in paper input
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exec/codegen.hpp"
#include "io/problem_format.hpp"
#include "io/schedule_export.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/reliability.hpp"
#include "tuning/hybrid.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: schedule_tool <file | --example1 | --example2>\n"
      "                     [--base | --solution1 | --solution2 | --hybrid]\n"
      "                     [--text | --gantt | --json | --csv | --exec |\n"
      "                      --problem | --analyze]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  HeuristicKind kind = HeuristicKind::kSolution1;
  std::string output = "--gantt";
  bool example1 = false;
  bool example2 = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--example1") {
      example1 = true;
    } else if (arg == "--example2") {
      example2 = true;
    } else if (arg == "--base") {
      kind = HeuristicKind::kBase;
    } else if (arg == "--solution1") {
      kind = HeuristicKind::kSolution1;
    } else if (arg == "--solution2") {
      kind = HeuristicKind::kSolution2;
    } else if (arg == "--hybrid") {
      kind = HeuristicKind::kHybrid;
    } else if (arg == "--text" || arg == "--gantt" || arg == "--json" ||
               arg == "--csv" || arg == "--exec" || arg == "--problem" ||
               arg == "--analyze") {
      output = arg;
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return usage();
    }
  }

  workload::OwnedProblem owned;
  if (example1) {
    owned = workload::paper_example1();
  } else if (example2) {
    owned = workload::paper_example2();
  } else if (!input.empty()) {
    std::ifstream file(input);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    Expected<workload::OwnedProblem> parsed =
        io::read_problem(buffer.str());
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(),
                   parsed.error().message.c_str());
      return 1;
    }
    owned = std::move(parsed).value();
  } else {
    return usage();
  }

  if (output == "--problem") {
    std::fputs(io::write_problem(owned.problem).c_str(), stdout);
    return 0;
  }

  Expected<Schedule> result =
      kind == HeuristicKind::kHybrid
          ? [&]() -> Expected<Schedule> {
              // Automatic redundancy trade-off search.
              Expected<HybridResult> hybrid = schedule_hybrid(owned.problem);
              if (!hybrid) return hybrid.error();
              return std::move(hybrid).value().schedule;
            }()
          : schedule(owned.problem, kind);
  if (!result) {
    std::fprintf(stderr, "scheduling failed (%s): %s\n",
                 to_string(result.error().code).c_str(),
                 result.error().message.c_str());
    return 1;
  }
  const Schedule& sched = result.value();
  for (const std::string& issue : validate(sched)) {
    std::fprintf(stderr, "validator: %s\n", issue.c_str());
  }

  if (output == "--text") {
    std::fputs(to_text(sched).c_str(), stdout);
  } else if (output == "--gantt") {
    std::fputs(to_gantt(sched).c_str(), stdout);
  } else if (output == "--json") {
    std::fputs(io::to_json(sched).c_str(), stdout);
  } else if (output == "--csv") {
    std::fputs(io::to_csv(sched).c_str(), stdout);
  } else if (output == "--exec") {
    std::fputs(emit_c(generate_executive(sched), sched).c_str(), stdout);
  } else if (output == "--analyze") {
    const ScheduleMetrics m = compute_metrics(sched);
    const TransientReport transient = analyze_transient(sched);
    std::printf("heuristic            %s\n", to_string(sched.kind()).c_str());
    std::printf("makespan             %s\n",
                time_to_string(m.makespan).c_str());
    std::printf("min iteration period %s\n",
                time_to_string(m.min_period).c_str());
    std::printf("replicas / transfers %zu / %zu (+%zu passive)\n",
                m.replicas, m.inter_processor_comms, m.passive_comms);
    std::printf("nominal response     %s\n",
                time_to_string(transient.nominal_response).c_str());
    std::printf("worst 1-failure resp %s (%.2fx, victim %s)\n",
                time_to_string(transient.worst_response).c_str(),
                transient.worst_stretch(),
                transient.worst_victim.valid()
                    ? owned.architecture
                          ->processor(transient.worst_victim)
                          .name.c_str()
                    : "-");
    if (owned.architecture->processor_count() <= 12) {
      for (const double p : {0.001, 0.01, 0.1}) {
        std::printf("reliability @ p=%-5g %.6f\n", p,
                    analyze_reliability(sched, p).iteration_reliability);
      }
    }
  }
  return 0;
}
