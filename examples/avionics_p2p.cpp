// Avionics-style flight control on a point-to-point mesh, scheduled with
// solution 2 (active replication of computations AND communications, §7):
// the architecture the paper recommends it for. A quadruplex-like setup:
// four flight-control computers fully interconnected, K = 2 simultaneous
// failures tolerated, no timeout anywhere — the surviving replicas' data
// simply arrives first.
//
// The workload is a classic inner/outer loop: air-data + inertial sensors
// feed gain-scheduled control laws through a voter/monitor stage, driving
// elevator and aileron servo outputs.
#include <cstdio>

#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"

using namespace ftsched;

int main() {
  AlgorithmGraph algorithm;
  const OperationId adc =
      algorithm.add_operation("air_data", OperationKind::kExtioIn);
  const OperationId imu =
      algorithm.add_operation("inertial", OperationKind::kExtioIn);
  const OperationId stick =
      algorithm.add_operation("side_stick", OperationKind::kExtioIn);
  const OperationId monitor = algorithm.add_operation("monitor");
  const OperationId outer = algorithm.add_operation("outer_loop");
  const OperationId inner = algorithm.add_operation("inner_loop");
  const OperationId mixer = algorithm.add_operation("surface_mixer");
  const OperationId elevator =
      algorithm.add_operation("elevator", OperationKind::kExtioOut);
  const OperationId aileron =
      algorithm.add_operation("aileron", OperationKind::kExtioOut);

  algorithm.add_dependency(adc, monitor);
  algorithm.add_dependency(imu, monitor);
  algorithm.add_dependency(stick, outer);
  algorithm.add_dependency(monitor, outer);
  algorithm.add_dependency(monitor, inner);
  algorithm.add_dependency(outer, inner);
  algorithm.add_dependency(inner, mixer);
  algorithm.add_dependency(mixer, elevator);
  algorithm.add_dependency(mixer, aileron);

  // Four FCCs, fully interconnected point-to-point (6 links).
  ArchitectureGraph arch;
  std::vector<ProcessorId> fcc;
  for (int i = 1; i <= 4; ++i) {
    std::string name = "FCC";
    name += std::to_string(i);
    fcc.push_back(arch.add_processor(name));
  }
  for (std::size_t i = 0; i < fcc.size(); ++i) {
    for (std::size_t j = i + 1; j < fcc.size(); ++j) {
      std::string link = "L";
      link += std::to_string(i + 1);
      link += '.';
      link += std::to_string(j + 1);
      arch.add_link(link, fcc[i], fcc[j]);
    }
  }

  ExecTable exec(algorithm, arch);
  CommTable comm(algorithm, arch);
  int wiring = 0;
  for (const Operation& op : algorithm.operations()) {
    if (is_extio(op.kind)) {
      // Each sensor/servo bus reaches three of the four computers.
      for (int r = 0; r < 3; ++r) {
        exec.set(op.id, fcc[(wiring + r) % fcc.size()], 0.2);
      }
      ++wiring;
    } else {
      exec.set_uniform(op.id, op.id == inner ? 0.8 : 1.2);
    }
  }
  for (const Dependency& dep : algorithm.dependencies()) {
    comm.set_uniform(dep.id, 0.3);
  }

  Problem problem;
  problem.algorithm = &algorithm;
  problem.architecture = &arch;
  problem.exec = &exec;
  problem.comm = &comm;
  problem.failures_to_tolerate = 2;

  const Expected<Schedule> result = schedule_solution2(problem);
  if (!result) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.error().message.c_str());
    return 1;
  }
  const Schedule& schedule = result.value();
  const bool valid = validate(schedule).empty();
  std::printf("Flight-control schedule (K=2, solution 2, P2P mesh):\n%s\n",
              to_gantt(schedule, 84).c_str());
  const ScheduleMetrics metrics = compute_metrics(schedule);
  std::printf("makespan %s, %zu replicas, %zu parallel transfers, "
              "validator %s\n\n",
              time_to_string(metrics.makespan).c_str(), metrics.replicas,
              metrics.inter_processor_comms, valid ? "clean" : "VIOLATIONS");

  // Kill two computers at once, at the worst mid-iteration instant, for
  // every pair: the control surfaces must keep moving and nothing waits.
  const Simulator simulator(schedule);
  bool all_masked = true;
  for (std::size_t a = 0; a < fcc.size(); ++a) {
    for (std::size_t b = a + 1; b < fcc.size(); ++b) {
      FailureScenario scenario;
      scenario.events.push_back(
          FailureEvent{fcc[a], schedule.makespan() / 2});
      scenario.events.push_back(
          FailureEvent{fcc[b], schedule.makespan() / 2});
      const IterationResult run = simulator.run(scenario);
      std::printf("  FCC%zu + FCC%zu down: %s, response %s, %zu timeouts\n",
                  a + 1, b + 1,
                  run.all_outputs_produced ? "masked" : "OUTPUTS LOST",
                  time_to_string(run.response_time).c_str(),
                  run.trace.count(TraceEvent::Kind::kTimeout));
      all_masked &= run.all_outputs_produced;
      all_masked &= run.trace.count(TraceEvent::Kind::kTimeout) == 0;
    }
  }
  std::printf("\nevery double failure masked without timeouts: %s\n",
              all_masked ? "yes" : "NO");
  return valid && all_masked ? 0 : 1;
}
