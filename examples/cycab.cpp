// CyCAB: the paper's real-world target (§8) — an electric autonomous
// vehicle with a 5-processor distributed architecture on a CAN bus. The
// published hardware is not available, so this example recreates the
// control application synthetically: joystick + four wheel sensors feed a
// sensor-fusion stage, a speed law and a steering law compute set-points
// from the fused state and the previous iteration's state register (a mem),
// and two actuators drive the motors.
//
// The mission: 8 control iterations; the ECU running most main replicas
// dies in iteration 2, a second ECU suffers a fail-silent episode in
// iteration 5. With K = 2 and solution 1, every iteration keeps actuating.
#include <cstdio>

#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sim/mission.hpp"

using namespace ftsched;

namespace {

struct Cycab {
  AlgorithmGraph algorithm;
  ArchitectureGraph arch;
};

}  // namespace

int main() {
  AlgorithmGraph algorithm;
  const OperationId joystick =
      algorithm.add_operation("joystick", OperationKind::kExtioIn);
  OperationId wheels[4];
  for (int i = 0; i < 4; ++i) {
    std::string name = "wheel";
    name += std::to_string(i);
    wheels[i] = algorithm.add_operation(name, OperationKind::kExtioIn);
  }
  const OperationId state =
      algorithm.add_operation("state", OperationKind::kMem);
  const OperationId fusion = algorithm.add_operation("fusion");
  const OperationId speed_law = algorithm.add_operation("speed_law");
  const OperationId steer_law = algorithm.add_operation("steer_law");
  const OperationId update = algorithm.add_operation("state_update");
  const OperationId motors =
      algorithm.add_operation("motors", OperationKind::kExtioOut);
  const OperationId steering =
      algorithm.add_operation("steering", OperationKind::kExtioOut);

  algorithm.add_dependency(joystick, fusion);
  for (const OperationId wheel : wheels) {
    algorithm.add_dependency(wheel, fusion);
  }
  algorithm.add_dependency(state, fusion);
  algorithm.add_dependency(fusion, speed_law);
  algorithm.add_dependency(fusion, steer_law);
  algorithm.add_dependency(speed_law, update);
  algorithm.add_dependency(steer_law, update);
  algorithm.add_dependency(update, state);
  algorithm.add_dependency(speed_law, motors);
  algorithm.add_dependency(steer_law, steering);

  // Five ECUs on one CAN bus, as on the vehicle.
  ArchitectureGraph arch;
  std::vector<ProcessorId> ecus;
  for (int i = 1; i <= 5; ++i) {
    std::string name = "ECU";
    name += std::to_string(i);
    ecus.push_back(arch.add_processor(name));
  }
  arch.add_bus("can", ecus);

  // Sensors/actuators are each wired to three ECUs (K+1 = 3); computations
  // may run anywhere, with mildly heterogeneous speeds.
  ExecTable exec(algorithm, arch);
  CommTable comm(algorithm, arch);
  int wiring = 0;
  for (const Operation& op : algorithm.operations()) {
    if (is_extio(op.kind)) {
      for (int r = 0; r < 3; ++r) {
        exec.set(op.id, ecus[(wiring + r) % ecus.size()], 0.3);
      }
      ++wiring;
    } else {
      for (std::size_t p = 0; p < ecus.size(); ++p) {
        const double speed = 1.0 + 0.1 * static_cast<double>(p);
        const Time wcet = op.kind == OperationKind::kMem
                              ? 0.2
                              : (op.id == fusion ? 1.6 : 1.0);
        exec.set(op.id, ecus[p], wcet * speed);
      }
    }
  }
  for (const Dependency& dep : algorithm.dependencies()) {
    comm.set_uniform(dep.id, 0.25);
  }

  Problem problem;
  problem.algorithm = &algorithm;
  problem.architecture = &arch;
  problem.exec = &exec;
  problem.comm = &comm;
  problem.failures_to_tolerate = 2;
  problem.deadline = 30.0;  // control period budget

  const Expected<Schedule> result = schedule_solution1(problem);
  if (!result) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.error().message.c_str());
    return 1;
  }
  const Schedule& schedule = result.value();
  const ScheduleMetrics metrics = compute_metrics(schedule);

  std::printf("CyCAB control schedule (K=2, solution 1, CAN bus):\n%s\n",
              to_gantt(schedule).c_str());
  std::printf("makespan %s, %zu replicas, %zu bus transfers, "
              "%zu passive backups\n\n",
              time_to_string(metrics.makespan).c_str(), metrics.replicas,
              metrics.inter_processor_comms, metrics.passive_comms);

  // Find the ECU hosting the most main replicas — the worst one to lose.
  std::vector<int> mains(ecus.size(), 0);
  for (const ScheduledOperation& placement : schedule.operations()) {
    if (placement.is_main()) ++mains[placement.processor.index()];
  }
  const ProcessorId victim = ecus[static_cast<std::size_t>(
      std::max_element(mains.begin(), mains.end()) - mains.begin())];
  const ProcessorId flaky = ecus[(victim.index() + 1) % ecus.size()];

  const MissionResult mission = run_mission(
      schedule, 8,
      {MissionFailure{2, FailureEvent{victim, schedule.makespan() / 3}}},
      {MissionSilence{
          5, SilentWindow{flaky, schedule.makespan() / 4,
                          schedule.makespan() / 2}}});

  std::printf("Mission: %s dies in iteration 2; %s goes silent during "
              "iteration 5.\n\n%s\n",
              arch.processor(victim).name.c_str(),
              arch.processor(flaky).name.c_str(),
              mission.to_text(arch).c_str());
  std::printf("vehicle kept actuating in every iteration: %s\n",
              mission.every_iteration_served() ? "yes" : "NO");
  return mission.every_iteration_served() ? 0 : 1;
}
