// Executive generation demo: prints the complete per-unit pseudo-C programs
// (computation units and communication units, including the solution-1
// backup OpComm procedures with their statically computed watch chains) for
// the paper's example 1 — the artefact SynDEx's second phase would hand to
// the m4 macro-expander (§4.1 step 2).
#include <cstdio>

#include "exec/codegen.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const bool p2p = argc > 1 && std::string_view(argv[1]) == "--p2p";
  const workload::OwnedProblem ex =
      p2p ? workload::paper_example2() : workload::paper_example1();

  const Expected<Schedule> result =
      p2p ? schedule_solution2(ex.problem) : schedule_solution1(ex.problem);
  if (!result) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.error().message.c_str());
    return 1;
  }

  const Executive executive = generate_executive(result.value());
  std::fputs(emit_c(executive, result.value()).c_str(), stdout);

  std::size_t instructions = 0;
  for (const ProcessorPrograms& programs : executive.processors) {
    instructions += programs.computation.instructions.size();
    for (const auto& [link, unit] : programs.comm_units) {
      instructions += unit.instructions.size();
    }
  }
  std::printf("/* %zu macro-instructions across %zu processors */\n",
              instructions, executive.processors.size());
  return 0;
}
