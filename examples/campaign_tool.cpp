// campaign_tool: the adversarial fault-injection campaign as a shell
// command — load a problem, build a schedule, hammer it with seeded random
// failure scenarios in parallel, and shrink any oracle violation to a
// minimal serialized reproducer:
//
//   ./campaign_tool --example1 --solution1 --seed 42 --scenarios 5000
//   ./campaign_tool --example1 --solution1 --scenarios 20000 --threads 8
//   ./campaign_tool --example1 --base --claim-k 1 --shrink    # has to fail
//   ./campaign_tool problem.ft --solution2 --links --iterations 4
//   ./campaign_tool --example1 --solution1 --replay repro.scenario
//   ./campaign_tool --example1 --solution1 --certify --certify-out cert.json
//   ./campaign_tool --example1 --solution1 --certify --certify-links 1
//   ./campaign_tool --example1 --solution1 --certify-silences 1
//                   --response-bound 42.5
//   ./campaign_tool problem.ft --solution2 --claim-k 1 --certify-links 1
//                   --repair --repair-out repair.json
//
// --certify switches from random sampling to the exhaustive certifier
// (campaign/certify.hpp): every dead-at-start subset and every
// representative mid-run fault sequence within the budgets is simulated
// via shared-prefix forking. --certify-links L and --certify-silences S
// (each implies --certify) extend the sweep beyond the paper's §5.1
// processor contract with up to L link deaths and S fail-silent windows;
// --response-bound tightens the response envelope the oracle and the
// certifier check (a branch's envelope widens by the longest injected
// silent window). Counterexamples are shrunk to a minimal serialized
// reproducer automatically.
//
// Certification as a service (src/service):
//
//   ./campaign_tool problem.ft --solution2 --plan-key
//   ./campaign_tool problem.ft --solution2 --certify-shard 0/2
//                   --stream-out shard0.ndjson
//   ./campaign_tool problem.ft --solution2 --merge-stream shard0.ndjson
//                   --merge-stream shard1.ndjson --certify-out cert.json
//   ./campaign_tool --serve --cache-size 64            # stdin/stdout pipe
//   ./campaign_tool --serve-socket /tmp/certifyd.sock  # certifyd daemon
//
// --plan-key prints the canonical plan fingerprint — the cache identity a
// certifyd server would use for this (schedule, budgets) pair — so users
// can check cache identity offline. --certify-shard I/N runs only the
// tasks with index % N == I and streams partial-certificate NDJSON
// records; --merge-stream folds complete worker streams back into a
// certificate byte-identical to single-process --certify. --serve /
// --serve-socket run the long-lived certifyd loop: line-delimited JSON
// requests (submit/status/shutdown), streamed progress/counterexample/
// result records, LRU plan-key result cache, per-request deadlines, and
// graceful SIGINT drain.
//
// --repair runs the counterexample-guided repair loop (campaign/repair.hpp)
// instead of certifying once: refute, shrink, localize the root blocker,
// apply one targeted scheduling-constraint move, re-certify incrementally
// through the replay cache — until the schedule certifies or the move/round
// budget runs out. The JSON repair log (--repair-out) records every move
// and its re-certification verdict and is byte-identical for any --threads.
//
// Exit status: 0 = campaign clean (replay satisfied the oracle / schedule
// certified / repair converged), 1 = oracle violations (certification or
// repair refuted), 2 = usage error, 3 = input file unreadable or malformed
// (diagnostic names the file and the offending line).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <exception>

#include "campaign/certify.hpp"
#include "campaign/frontier.hpp"
#include "campaign/repair.hpp"
#include "campaign/runner.hpp"
#include "campaign/shrink.hpp"
#include "io/cli_util.hpp"
#include "io/problem_format.hpp"
#include "io/scenario_format.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "sched/heuristics.hpp"
#include "service/cache.hpp"
#include "service/server.hpp"
#include "service/shard.hpp"
#include "service/stream.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"

using namespace ftsched;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: campaign_tool <file | --example1 | --example2>\n"
      "                     [--base | --solution1 | --solution2]\n"
      "                     [--seed N] [--scenarios N] [--threads N]\n"
      "                     [--claim-k K] [--iterations MAX]\n"
      "                     [--overbudget FRACTION] [--links] [--silence]\n"
      "                     [--suspects] [--shrink] [--replay FILE]\n"
      "                     [--certify] [--certify-out FILE]\n"
      "                     [--certify-links L] [--certify-silences S]\n"
      "                     [--response-bound T]\n"
      "                     [--latency NAME:SRC:SINK:BOUND]...\n"
      "                     [--frontier] [--frontier-k K]\n"
      "                     [--frontier-links L] [--frontier-silences S]\n"
      "                     [--frontier-out FILE]\n"
      "                     [--repair] [--repair-rounds N]\n"
      "                     [--repair-out FILE]\n"
      "                     [--metrics-out FILE] [--trace-out FILE]\n"
      "                     [--plan-key] [--certify-shard I/N]\n"
      "                     [--stream-out FILE] [--merge-stream FILE]...\n"
      "                     [--serve | --serve-socket PATH]\n"
      "                     [--cache-size N] [--serve-threads N]\n"
      "                     [--prune=on|off]\n"
      "\n"
      "--certify exhaustively certifies the schedule against every\n"
      "failure pattern of size <= K (--claim-k, default the schedule's\n"
      "own tolerance) and writes the machine-readable certificate or\n"
      "refutation to --certify-out. --certify-links L adds up to L link\n"
      "deaths per branch (budgeted separately from K), --certify-silences\n"
      "S adds up to S fail-silent windows; --response-bound T makes both\n"
      "the certifier and the oracle enforce response <= T (+ the longest\n"
      "injected silent window). --prune=off disables the certifier's\n"
      "subtree memoization and slack cuts (--prune=on, the default,\n"
      "produces a byte-identical certificate — the switch exists for\n"
      "A/B timing and for auditing exactly that identity).\n"
      "--latency NAME:SRC:SINK:BOUND (repeatable) adds a named chain\n"
      "constraint — every surviving replica path from SRC's operation to\n"
      "SINK's must complete within BOUND — checked by the oracle, the\n"
      "certifier, the shrinker, repair and certifyd alongside the global\n"
      "response bound; refuting branches name the violated constraints.\n"
      "--frontier sweeps the (K, L, S) budget lattice outward from\n"
      "(0,0,0) up to --frontier-k/--frontier-links/--frontier-silences\n"
      "(defaults: the schedule's own tolerance + 1, 1, 1), certifying\n"
      "each point (reusing one memo across the walk) and reporting the\n"
      "maximal certifiable surface, the first refuting counterexample at\n"
      "each boundary point and the Goemans-Lynch-Saias upper bounds;\n"
      "--frontier-out writes the JSON report (byte-identical for any\n"
      "--threads and either --prune setting).\n"
      "--repair turns a refuted schedule into a certified one by\n"
      "counterexample-guided repair under the same budgets: each round\n"
      "shrinks a counterexample, applies one targeted move (re-place a\n"
      "replica, re-route a send, widen a timeout chain) and re-certifies\n"
      "incrementally through a replay cache. --repair-rounds caps the\n"
      "accepted moves; --repair-out writes the JSON repair log\n"
      "(byte-identical for any --threads).\n"
      "--plan-key prints the canonical plan fingerprint for the certify\n"
      "budgets in effect (--claim-k/--certify-links/--certify-silences/\n"
      "--response-bound) — the key certifyd's result cache uses, so two\n"
      "problems printing the same key are isomorphic plans that share a\n"
      "cache entry. --certify-shard I/N certifies only task indices\n"
      "congruent to I mod N and streams NDJSON partial-certificate\n"
      "records to --stream-out (default stdout); --merge-stream (repeat\n"
      "per worker stream) validates and merges complete shard streams\n"
      "into a certificate byte-identical to single-process --certify.\n"
      "--serve reads line-delimited JSON requests from stdin (CI pipe\n"
      "mode); --serve-socket listens on a Unix-domain socket; both keep\n"
      "an LRU result cache of --cache-size plans (0 disables) and drain\n"
      "gracefully on SIGINT. --serve-threads N serves up to N socket\n"
      "connections concurrently (default 1, sequential) against the one\n"
      "shared cache; service.* metrics merge per request, so totals are\n"
      "independent of how connections interleave.\n"
      "--metrics-out writes the campaign's merged domain metrics as JSON\n"
      "(deterministic for a given seed, any thread count); --trace-out\n"
      "writes the run's profiling spans as Chrome trace-event JSON (open\n"
      "in chrome://tracing or https://ui.perfetto.dev).\n"
      "\n"
      "exit status: 0 clean/certified/repaired, 1 refuted, 2 usage error,\n"
      "3 input file unreadable or malformed (diagnostic names the file\n"
      "and the offending line).\n");
  return 2;
}

using io::write_file;

/// Out-of-range operands ride the tool's existing exit-3 diagnostic path:
/// main() catches, prints "campaign_tool: <reason>" and returns 3 — the
/// same treatment a malformed input file gets, because the operand LOOKED
/// numeric and silently saturating it is the bug these wrappers fix.
[[noreturn]] void out_of_range(const char* flag, const char* text) {
  throw std::invalid_argument(std::string(flag) + " operand \"" + text +
                              "\" is out of range");
}

bool parse_number(const char* flag, const char* text, long& out) {
  switch (io::parse_number(text, out)) {
    case io::ParseStatus::kOk: return true;
    case io::ParseStatus::kOutOfRange: out_of_range(flag, text);
    case io::ParseStatus::kMalformed: break;
  }
  return false;
}

bool parse_fraction(const char* flag, const char* text, double& out) {
  switch (io::parse_fraction(text, out)) {
    case io::ParseStatus::kOk: return true;
    case io::ParseStatus::kOutOfRange: out_of_range(flag, text);
    case io::ParseStatus::kMalformed: break;
  }
  return false;
}

bool parse_time(const char* flag, const char* text, double& out) {
  switch (io::parse_time(text, out)) {
    case io::ParseStatus::kOk: return true;
    case io::ParseStatus::kOutOfRange: out_of_range(flag, text);
    case io::ParseStatus::kMalformed: break;
  }
  return false;
}

/// Parses a "--certify-shard I/N" operand.
bool parse_shard(const char* text, campaign::CertifyShardSpec& out) {
  std::size_t index = 0;
  std::size_t count = 1;
  switch (io::parse_shard(text, index, count)) {
    case io::ParseStatus::kOk:
      out.shard_index = index;
      out.shard_count = count;
      return true;
    case io::ParseStatus::kOutOfRange: out_of_range("--certify-shard", text);
    case io::ParseStatus::kMalformed: break;
  }
  return false;
}

/// Parses a "--latency NAME:SRC:SINK:BOUND" operand (names resolve against
/// the schedule's algorithm graph later, like every certifier entry point).
bool parse_latency(const char* text, campaign::LatencyConstraint& out) {
  const std::string s = text;
  const std::size_t a = s.find(':');
  if (a == std::string::npos) return false;
  const std::size_t b = s.find(':', a + 1);
  if (b == std::string::npos) return false;
  const std::size_t c = s.find(':', b + 1);
  if (c == std::string::npos) return false;
  out.name = s.substr(0, a);
  out.source_op = s.substr(a + 1, b - a - 1);
  out.sink_op = s.substr(b + 1, c - b - 1);
  if (out.name.empty() || out.source_op.empty() || out.sink_op.empty()) {
    return false;
  }
  double bound = 0;
  if (!parse_time("--latency", s.c_str() + c + 1, bound)) return false;
  out.bound = bound;
  return true;
}

/// SIGINT sets the flag; certifyd drains the in-flight request and exits.
/// Installed WITHOUT SA_RESTART so blocking reads return EINTR and the
/// serve loops re-check the flag.
std::atomic<bool> g_stop{false};

extern "C" void handle_sigint(int) { g_stop.store(true); }

void install_sigint_drain() {
  struct sigaction action {};
  action.sa_handler = handle_sigint;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
}

/// Input-file failure (unreadable or malformed): one line naming the file
/// and — for parse errors — the offending line, distinct exit code 3 so
/// scripts can tell "bad input" from "schedule refuted" (1) and "bad
/// usage" (2).
int input_error(const std::string& path, const std::string& message) {
  std::fprintf(stderr, "campaign_tool: %s: %s\n", path.c_str(),
               message.c_str());
  return 3;
}

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    // Belt and braces: anything a malformed input drives the library to
    // throw still exits with the input-error code and a one-line reason.
    std::fprintf(stderr, "campaign_tool: %s\n", error.what());
    return 3;
  }
}

namespace {

int run(int argc, char** argv) {
  std::string input;
  std::string replay_file;
  std::string metrics_out;
  std::string trace_out;
  HeuristicKind kind = HeuristicKind::kSolution1;
  bool example1 = false;
  bool example2 = false;
  bool do_shrink = false;
  bool do_certify = false;
  bool do_repair = false;
  long certify_links = 0;
  long certify_silences = 0;
  long repair_rounds = campaign::RepairSpec{}.max_rounds;
  std::string certify_out;
  std::string repair_out;
  bool do_frontier = false;
  long frontier_k = -1;
  long frontier_links = campaign::FrontierSpec{}.max_link_failures;
  long frontier_silences = campaign::FrontierSpec{}.max_silences;
  std::string frontier_out;
  campaign::LatencyConstraint latency;
  std::vector<campaign::LatencyConstraint> latency_constraints;
  bool do_plan_key = false;
  bool do_shard = false;
  bool do_serve = false;
  campaign::CertifyShardSpec shard;
  std::string stream_out;
  std::vector<std::string> merge_streams;
  std::string serve_socket_path;
  long cache_size = 64;
  long serve_threads = 1;
  bool prune = true;
  campaign::CampaignOptions options;
  // An interesting default mix: short missions, some over-budget attacks,
  // occasional benign silences and wrong suspicions. Link faults stay
  // opt-in (--links) — they are outside the paper's failure hypothesis.
  options.spec.max_iterations = 3;
  options.spec.over_budget_fraction = 0.15;
  options.spec.silence_probability = 0.10;
  options.spec.suspect_probability = 0.10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long number = 0;
    double fraction = 0;
    if (arg == "--example1") {
      example1 = true;
    } else if (arg == "--example2") {
      example2 = true;
    } else if (arg == "--base") {
      kind = HeuristicKind::kBase;
    } else if (arg == "--solution1") {
      kind = HeuristicKind::kSolution1;
    } else if (arg == "--solution2") {
      kind = HeuristicKind::kSolution2;
    } else if (arg == "--seed" && i + 1 < argc &&
               parse_number("--seed", argv[++i], number)) {
      options.seed = static_cast<std::uint64_t>(number);
    } else if (arg == "--scenarios" && i + 1 < argc &&
               parse_number("--scenarios", argv[++i], number)) {
      options.scenarios = static_cast<std::size_t>(number);
    } else if (arg == "--threads" && i + 1 < argc &&
               parse_number("--threads", argv[++i], number)) {
      options.threads = static_cast<unsigned>(number);
    } else if (arg == "--claim-k" && i + 1 < argc &&
               parse_number("--claim-k", argv[++i], number)) {
      options.oracle.claimed_tolerance = static_cast<int>(number);
      options.spec.max_processor_failures = static_cast<int>(number);
    } else if (arg == "--iterations" && i + 1 < argc &&
               parse_number("--iterations", argv[++i], number) &&
               number >= 1) {
      options.spec.max_iterations = static_cast<int>(number);
    } else if (arg == "--overbudget" && i + 1 < argc &&
               parse_fraction("--overbudget", argv[++i], fraction)) {
      options.spec.over_budget_fraction = fraction;
    } else if (arg == "--links") {
      options.spec.link_failure_probability = 0.25;
    } else if (arg == "--silence") {
      options.spec.silence_probability = 0.25;
    } else if (arg == "--suspects") {
      options.spec.suspect_probability = 0.25;
    } else if (arg == "--shrink") {
      do_shrink = true;
    } else if (arg == "--certify") {
      do_certify = true;
    } else if (arg == "--certify-links" && i + 1 < argc &&
               parse_number("--certify-links", argv[++i], number)) {
      certify_links = number;
      do_certify = true;
    } else if (arg == "--certify-silences" && i + 1 < argc &&
               parse_number("--certify-silences", argv[++i], number)) {
      certify_silences = number;
      do_certify = true;
    } else if (arg == "--response-bound" && i + 1 < argc &&
               parse_time("--response-bound", argv[++i], fraction)) {
      options.oracle.response_bound = fraction;
    } else if (arg == "--latency" && i + 1 < argc &&
               parse_latency(argv[++i], latency)) {
      latency_constraints.push_back(latency);
    } else if (arg == "--certify-out" && i + 1 < argc) {
      certify_out = argv[++i];
    } else if (arg == "--repair") {
      do_repair = true;
    } else if (arg == "--repair-rounds" && i + 1 < argc &&
               parse_number("--repair-rounds", argv[++i], number)) {
      repair_rounds = number;
      do_repair = true;
    } else if (arg == "--repair-out" && i + 1 < argc) {
      repair_out = argv[++i];
      do_repair = true;
    } else if (arg == "--frontier") {
      do_frontier = true;
    } else if (arg == "--frontier-k" && i + 1 < argc &&
               parse_number("--frontier-k", argv[++i], number)) {
      frontier_k = number;
      do_frontier = true;
    } else if (arg == "--frontier-links" && i + 1 < argc &&
               parse_number("--frontier-links", argv[++i], number)) {
      frontier_links = number;
      do_frontier = true;
    } else if (arg == "--frontier-silences" && i + 1 < argc &&
               parse_number("--frontier-silences", argv[++i], number)) {
      frontier_silences = number;
      do_frontier = true;
    } else if (arg == "--frontier-out" && i + 1 < argc) {
      frontier_out = argv[++i];
      do_frontier = true;
    } else if (arg == "--plan-key") {
      do_plan_key = true;
    } else if (arg == "--certify-shard" && i + 1 < argc &&
               parse_shard(argv[++i], shard)) {
      do_shard = true;
    } else if (arg == "--stream-out" && i + 1 < argc) {
      stream_out = argv[++i];
    } else if (arg == "--merge-stream" && i + 1 < argc) {
      merge_streams.emplace_back(argv[++i]);
    } else if (arg == "--serve") {
      do_serve = true;
    } else if (arg == "--serve-socket" && i + 1 < argc) {
      serve_socket_path = argv[++i];
      do_serve = true;
    } else if (arg == "--cache-size" && i + 1 < argc &&
               parse_number("--cache-size", argv[++i], number)) {
      cache_size = number;
    } else if (arg == "--serve-threads" && i + 1 < argc &&
               parse_number("--serve-threads", argv[++i], number) &&
               number >= 1) {
      serve_threads = number;
    } else if (arg == "--prune=on") {
      prune = true;
    } else if (arg == "--prune=off") {
      prune = false;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_file = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return usage();
    }
  }

  if (do_serve) {
    service::ServeOptions serve_options;
    serve_options.cache_capacity = static_cast<std::size_t>(cache_size);
    serve_options.threads = options.threads;
    serve_options.serve_threads = static_cast<unsigned>(serve_threads);
    serve_options.stop = &g_stop;
    install_sigint_drain();
    if (!serve_socket_path.empty()) {
      return service::serve_socket(serve_socket_path, serve_options);
    }
    return service::serve_lines(std::cin, std::cout, serve_options);
  }

  workload::OwnedProblem owned;
  if (example1) {
    owned = workload::paper_example1();
  } else if (example2) {
    owned = workload::paper_example2();
  } else if (!input.empty()) {
    std::ifstream file(input);
    if (!file) {
      return input_error(input, "cannot open file");
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    Expected<workload::OwnedProblem> parsed = io::read_problem(buffer.str());
    if (!parsed) {
      return input_error(input, parsed.error().message);
    }
    owned = std::move(parsed).value();
  } else {
    return usage();
  }

  const Expected<Schedule> result = schedule(owned.problem, kind);
  if (!result) {
    std::fprintf(stderr, "scheduling failed (%s): %s\n",
                 to_string(result.error().code).c_str(),
                 result.error().message.c_str());
    return 2;
  }
  const Schedule& sched = result.value();
  const ArchitectureGraph& arch = *owned.problem.architecture;

  // Chain constraints apply everywhere a verdict is formed: the replay /
  // shrink oracle, certification, repair screening, and the service modes.
  options.oracle.latency_constraints = latency_constraints;

  // The certification budgets the service modes key/shard/merge against —
  // identical to what --certify below builds, so --plan-key prints exactly
  // the key a certifyd submission with these flags would look up.
  campaign::CertifySpec service_spec;
  service_spec.max_failures = options.oracle.claimed_tolerance;
  service_spec.max_link_failures = static_cast<int>(certify_links);
  service_spec.max_silences = static_cast<int>(certify_silences);
  service_spec.response_bound = options.oracle.response_bound;
  service_spec.latency_constraints = latency_constraints;
  service_spec.threads = options.threads;
  service_spec.prune = prune;

  if (do_plan_key) {
    // Bare key on stdout: scripts compare two problems' cache identity.
    std::printf("%s\n", service::plan_key_string(sched, service_spec).c_str());
    return 0;
  }

  if (!do_shard) {
    // Shard mode keeps stdout clean: with no --stream-out the NDJSON
    // records themselves go there.
    std::printf("schedule: %s, K=%d, makespan %s\n",
                to_string(sched.kind()).c_str(), sched.failures_tolerated(),
                time_to_string(sched.makespan()).c_str());
  }

  if (do_shard) {
    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!stream_out.empty()) {
      file.open(stream_out);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", stream_out.c_str());
        return 2;
      }
      out = &file;
    }
    service::OstreamSink sink(*out);
    const service::StreamShardResult shard_result =
        service::certify_stream(sched, service_spec, shard, sink);
    std::fprintf(stderr, "shard %zu/%zu: %zu tasks streamed\n",
                 shard.shard_index, shard.shard_count,
                 shard_result.tasks_emitted);
    return shard_result.completed ? 0 : 1;
  }

  if (!merge_streams.empty()) {
    std::vector<std::string> streams;
    for (const std::string& path : merge_streams) {
      std::ifstream file(path);
      if (!file) {
        return input_error(path, "cannot open file");
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      streams.push_back(buffer.str());
    }
    const Expected<campaign::CertifyReport> merged =
        service::merge_streams(sched, service_spec, streams);
    if (!merged) {
      return input_error(merge_streams.front(), merged.error().message);
    }
    const campaign::CertifyReport& report = merged.value();
    std::fputs(report.to_text(arch).c_str(), stdout);
    if (!certify_out.empty() &&
        !write_file(certify_out, report.to_json(arch))) {
      return 2;
    }
    return report.certified ? 0 : 1;
  }

  if (do_frontier) {
    campaign::FrontierSpec fspec;
    fspec.max_failures = static_cast<int>(frontier_k);
    fspec.max_link_failures = static_cast<int>(frontier_links);
    fspec.max_silences = static_cast<int>(frontier_silences);
    fspec.response_bound = options.oracle.response_bound;
    fspec.latency_constraints = latency_constraints;
    fspec.threads = options.threads;
    fspec.prune = prune;
    const campaign::FrontierReport report =
        campaign::frontier_sweep(sched, fspec);
    std::fputs(report.to_text(arch).c_str(), stdout);
    if (!frontier_out.empty() &&
        !write_file(frontier_out, report.to_json(arch))) {
      return 2;
    }
    // The frontier is a capability map, not a pass/fail gate; the exit
    // code reports only whether the fault-free baseline (0, 0, 0) holds.
    return !report.points.empty() && report.points.front().certified ? 0 : 1;
  }

  if (!replay_file.empty()) {
    std::ifstream file(replay_file);
    if (!file) {
      return input_error(replay_file, "cannot open file");
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const Expected<MissionPlan> plan =
        io::read_scenario(buffer.str(), arch);
    if (!plan) {
      return input_error(replay_file, plan.error().message);
    }
    const campaign::Oracle oracle(sched, options.oracle);
    const MissionResult mission = run_mission(sched, plan.value());
    std::fputs(mission.to_text(arch).c_str(), stdout);
    const campaign::Verdict verdict = oracle.judge(plan.value(), mission);
    if (verdict.ok()) {
      std::printf("replay: oracle satisfied (within contract: %s)\n",
                  verdict.within_contract ? "yes" : "no");
      return 0;
    }
    for (const std::string& violation : verdict.violations) {
      std::printf("replay violation: %s\n", violation.c_str());
    }
    return 1;
  }

  if (do_repair) {
    campaign::RepairSpec rspec;
    rspec.certify.max_failures = options.oracle.claimed_tolerance;
    rspec.certify.max_link_failures = static_cast<int>(certify_links);
    rspec.certify.max_silences = static_cast<int>(certify_silences);
    rspec.certify.response_bound = options.oracle.response_bound;
    rspec.certify.latency_constraints = latency_constraints;
    rspec.certify.threads = options.threads;
    rspec.certify.prune = prune;
    rspec.max_rounds = static_cast<int>(repair_rounds);
    if (!trace_out.empty()) obs::Profiler::global().enable(true);
    const campaign::RepairReport report =
        campaign::repair(owned.problem, kind, rspec);
    const AlgorithmGraph& graph = *owned.problem.algorithm;
    std::fputs(report.to_text(graph, arch).c_str(), stdout);
    if (!repair_out.empty() &&
        !write_file(repair_out, report.to_json(graph, arch))) {
      return 2;
    }
    if (!metrics_out.empty() &&
        !write_file(metrics_out, report.metrics.to_json())) {
      return 2;
    }
    if (!trace_out.empty()) {
      obs::Profiler::global().enable(false);
      const std::string trace =
          obs::chrome_trace_from_spans(obs::Profiler::global().drain());
      if (!write_file(trace_out, trace)) return 2;
    }
    if (report.certified) return 0;
    if (!report.rounds.empty() && !report.rounds.back().certified) {
      const MissionPlan& final_plan = report.rounds.back().counterexample;
      std::printf("\n# final counterexample (%zu events)\n%s",
                  final_plan.event_count(),
                  io::write_scenario(final_plan, arch).c_str());
    }
    return 1;
  }

  if (do_certify) {
    campaign::CertifySpec spec;
    spec.max_failures = options.oracle.claimed_tolerance;
    spec.max_link_failures = static_cast<int>(certify_links);
    spec.max_silences = static_cast<int>(certify_silences);
    spec.response_bound = options.oracle.response_bound;
    spec.latency_constraints = latency_constraints;
    spec.threads = options.threads;
    spec.prune = prune;
    // The shrink oracle must judge link faults within the certified budget
    // as within-contract, or a link counterexample would satisfy it and
    // the shrinker's precondition (oracle rejects the plan) would fail.
    options.oracle.claimed_link_tolerance = static_cast<int>(certify_links);
    if (!trace_out.empty()) obs::Profiler::global().enable(true);
    const campaign::CertifyReport report = campaign::certify(sched, spec);
    std::fputs(report.to_text(arch).c_str(), stdout);
    if (!certify_out.empty() &&
        !write_file(certify_out, report.to_json(arch))) {
      return 2;
    }
    if (!metrics_out.empty() &&
        !write_file(metrics_out, report.metrics.to_json())) {
      return 2;
    }
    if (!trace_out.empty()) {
      obs::Profiler::global().enable(false);
      const std::string trace =
          obs::chrome_trace_from_spans(obs::Profiler::global().drain());
      if (!write_file(trace_out, trace)) return 2;
    }
    if (report.certified) return 0;

    // Shrink the first counterexample to a minimal serialized reproducer
    // (the certifier's branches are already canonical, but the shrinker
    // often drops dead-at-start processors that were not load-bearing).
    const MissionPlan plan =
        campaign::counterexample_plan(report.counterexamples.front());
    std::printf("\n# counterexample reproducer (%zu events)\n%s",
                plan.event_count(), io::write_scenario(plan, arch).c_str());
    const Simulator simulator(sched);
    const campaign::Oracle oracle(sched, options.oracle);
    const campaign::ShrinkResult shrunk =
        campaign::shrink(simulator, oracle, plan);
    std::printf(
        "\n# shrunk reproducer (%zu -> %zu events, %zu re-simulations)\n%s",
        shrunk.initial_events, shrunk.final_events, shrunk.simulations,
        io::write_scenario(shrunk.plan, arch).c_str());
    for (const std::string& violation : shrunk.violations) {
      std::printf("# still fails: %s\n", violation.c_str());
    }
    return 1;
  }

  if (!trace_out.empty()) obs::Profiler::global().enable(true);
  const campaign::CampaignReport report =
      campaign::run_campaign(sched, options);
  std::fputs(report.to_text(arch).c_str(), stdout);
  if (!metrics_out.empty() &&
      !write_file(metrics_out, report.metrics.to_json())) {
    return 2;
  }
  if (!trace_out.empty()) {
    obs::Profiler::global().enable(false);
    const std::string trace =
        obs::chrome_trace_from_spans(obs::Profiler::global().drain());
    if (!write_file(trace_out, trace)) return 2;
  }
  if (report.violations.empty()) return 0;

  const campaign::CampaignViolation& first = report.violations.front();
  std::printf("\nfirst violation: scenario %zu (seed %llu)\n", first.index,
              static_cast<unsigned long long>(first.seed));
  for (const std::string& detail : first.details) {
    std::printf("  %s\n", detail.c_str());
  }
  if (first.plan.event_count() == 0) return 1;

  std::printf("\n# original reproducer (%zu events)\n%s",
              first.plan.event_count(),
              io::write_scenario(first.plan, arch).c_str());
  if (do_shrink) {
    const Simulator simulator(sched);
    const campaign::Oracle oracle(sched, options.oracle);
    const campaign::ShrinkResult shrunk =
        campaign::shrink(simulator, oracle, first.plan);
    std::printf(
        "\n# shrunk reproducer (%zu -> %zu events, %zu re-simulations)\n%s",
        shrunk.initial_events, shrunk.final_events, shrunk.simulations,
        io::write_scenario(shrunk.plan, arch).c_str());
    for (const std::string& violation : shrunk.violations) {
      std::printf("# still fails: %s\n", violation.c_str());
    }
  }
  return 1;
}

}  // namespace
