// End-to-end from source code: compile a synchronous dataflow node (the
// front-end role LUSTRE/SIGNAL play in the paper's toolchain, §4.1), attach
// timing characteristics, schedule it fault-tolerantly on a CAN bus, and
// crash a processor to watch the backups take over.
//
// Pass a file path to compile your own node instead of the built-in one.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/dot.hpp"
#include "lang/compiler.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"

using namespace ftsched;

namespace {

constexpr const char* kBuiltin = R"(
-- anti-lock braking controller
node abs(wheel_fl: sensor; wheel_fr: sensor; pedal: sensor)
returns (valve_fl: actuator; valve_fr: actuator)
let
  slip_fl  = slip(wheel_fl, ref);
  slip_fr  = slip(wheel_fr, ref);
  ref      = reference(wheel_fl, wheel_fr);
  demand   = shape(pedal);
  hold     = pre(state);
  state    = update(hold, slip_fl, slip_fr);
  valve_fl = modulate(demand, slip_fl, hold);
  valve_fr = modulate2(demand, slip_fr, hold);
tel
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kBuiltin;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  const Expected<lang::CompiledNode> compiled = lang::compile_node(source);
  if (!compiled) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.error().message.c_str());
    return 1;
  }
  const AlgorithmGraph& algorithm = *compiled->graph;
  std::printf("compiled node '%s': %zu operations, %zu dependencies\n\n",
              compiled->name.c_str(), algorithm.operation_count(),
              algorithm.dependency_count());
  std::fputs(to_dot(algorithm, compiled->name).c_str(), stdout);

  // Three ECUs on a CAN bus; sensors/actuators wired to two each (K+1).
  ArchitectureGraph arch;
  std::vector<ProcessorId> ecus;
  for (int i = 1; i <= 3; ++i) {
    std::string name = "ECU";
    name += std::to_string(i);
    ecus.push_back(arch.add_processor(name));
  }
  arch.add_bus("can", ecus);

  ExecTable exec(algorithm, arch);
  CommTable comm(algorithm, arch);
  int wiring = 0;
  for (const Operation& op : algorithm.operations()) {
    if (is_extio(op.kind)) {
      exec.set(op.id, ecus[wiring % 3], 0.2);
      exec.set(op.id, ecus[(wiring + 1) % 3], 0.2);
      ++wiring;
    } else {
      exec.set_uniform(op.id,
                       op.kind == OperationKind::kMem ? 0.1 : 0.8);
    }
  }
  for (const Dependency& dep : algorithm.dependencies()) {
    comm.set_uniform(dep.id, 0.15);
  }

  Problem problem;
  problem.algorithm = &algorithm;
  problem.architecture = &arch;
  problem.exec = &exec;
  problem.comm = &comm;
  problem.failures_to_tolerate = 1;

  const Expected<Schedule> schedule = schedule_solution1(problem);
  if (!schedule) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 schedule.error().message.c_str());
    return 1;
  }
  std::printf("\nK=1 schedule on the CAN bus:\n%s\n",
              to_gantt(schedule.value(), 76).c_str());

  const Simulator simulator(schedule.value());
  bool all = true;
  for (ProcessorId ecu : ecus) {
    const IterationResult run = simulator.run(
        FailureScenario::crash(ecu, schedule->makespan() / 2));
    std::printf("%s dies mid-iteration: %s (response %s)\n",
                arch.processor(ecu).name.c_str(),
                run.all_outputs_produced ? "valves still actuate"
                                         : "OUTPUTS LOST",
                time_to_string(run.response_time).c_str());
    all &= run.all_outputs_produced;
  }
  return all ? 0 : 1;
}
