// Quickstart: the complete ftsched pipeline in one page.
//
//  1. describe the algorithm as a data-flow graph,
//  2. describe the architecture (processors + links),
//  3. give the two characteristics tables (WCETs, transfer durations),
//  4. ask for a schedule tolerating K fail-stop processor failures,
//  5. inspect it, generate the executive, and crash a processor in the
//     simulator to watch the backups take over.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "exec/codegen.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"

using namespace ftsched;

int main() {
  // 1. Algorithm: sensor -> filter -> {control, log} -> actuator.
  AlgorithmGraph algorithm;
  const OperationId sensor =
      algorithm.add_operation("sensor", OperationKind::kExtioIn);
  const OperationId filter = algorithm.add_operation("filter");
  const OperationId control = algorithm.add_operation("control");
  const OperationId log = algorithm.add_operation("log");
  const OperationId actuator =
      algorithm.add_operation("actuator", OperationKind::kExtioOut);
  algorithm.add_dependency(sensor, filter);
  algorithm.add_dependency(filter, control);
  algorithm.add_dependency(filter, log);
  algorithm.add_dependency(control, actuator);
  algorithm.add_dependency(log, actuator);

  // 2. Architecture: three processors sharing a CAN-style bus.
  ArchitectureGraph arch;
  const ProcessorId p1 = arch.add_processor("P1");
  const ProcessorId p2 = arch.add_processor("P2");
  const ProcessorId p3 = arch.add_processor("P3");
  arch.add_bus("can", {p1, p2, p3});

  // 3. Characteristics. The sensor is wired to P1 and P2, the actuator to
  //    P2 and P3; everything else may run anywhere.
  ExecTable exec(algorithm, arch);
  exec.set(sensor, p1, 0.5);
  exec.set(sensor, p2, 0.5);
  exec.set_uniform(filter, 2.0);
  exec.set_uniform(control, 1.5);
  exec.set_uniform(log, 1.0);
  exec.set(actuator, p2, 0.5);
  exec.set(actuator, p3, 0.5);
  CommTable comm(algorithm, arch);
  for (const Dependency& dep : algorithm.dependencies()) {
    comm.set_uniform(dep.id, 0.4);
  }

  // 4. Schedule, tolerating one processor failure.
  Problem problem;
  problem.algorithm = &algorithm;
  problem.architecture = &arch;
  problem.exec = &exec;
  problem.comm = &comm;
  problem.failures_to_tolerate = 1;

  const Expected<Schedule> result = schedule_solution1(problem);
  if (!result) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.error().message.c_str());
    return 1;
  }
  const Schedule& schedule = result.value();

  // 5a. Inspect.
  std::printf("Fault-tolerant schedule (K=1, solution 1):\n%s\n",
              to_gantt(schedule).c_str());

  // 5b. The generated distributed executive, as pseudo-C.
  std::printf("Generated executive (excerpt):\n");
  const std::string code = emit_c(generate_executive(schedule), schedule);
  std::fwrite(code.data(), 1, std::min<std::size_t>(code.size(), 1200),
              stdout);
  std::printf("...\n\n");

  // 5c. Crash P2 mid-iteration and watch the system keep actuating.
  const Simulator simulator(schedule);
  const IterationResult nominal = simulator.run();
  const IterationResult faulty = simulator.run(
      FailureScenario::crash(p2, schedule.makespan() / 2));
  std::printf("failure-free response: %s\n",
              time_to_string(nominal.response_time).c_str());
  std::printf("response with P2 crashing mid-iteration: %s (%s)\n",
              time_to_string(faulty.response_time).c_str(),
              faulty.all_outputs_produced ? "all outputs produced"
                                          : "OUTPUTS LOST");
  return faulty.all_outputs_produced ? 0 : 1;
}
