// trace_tool: renders ftsched artefacts as Chrome trace-event JSON (open
// the output in chrome://tracing or https://ui.perfetto.dev) and dumps the
// scheduler's decision log:
//
//   ./trace_tool gantt --example1 --solution1 -o fig17.trace.json
//   ./trace_tool sim --example1 --solution1 --fail P1@2 -o faulty.trace.json
//   ./trace_tool sim --example2 --solution2 --dead P3 --replay repro.scenario
//   ./trace_tool profile --example1 --solution1 --scenarios 5000 --threads 4
//   ./trace_tool explain --example1 --solution1
//
// Subcommands:
//   gantt    the static schedule, one timeline row per processor and link;
//   sim      one simulated iteration (crashes via --fail, processors dead
//            from the start via --dead) as an actual-execution timeline
//            with timeout / election / failure instants;
//   profile  wall-clock profiling spans of a fault-injection campaign over
//            the schedule, one row per worker thread (needs a build with
//            FTSCHED_OBS=ON to show scheduler/simulator internals);
//   explain  the per-step candidate tables of the list scheduler (text,
//            not JSON): every (operation, processor) pressure evaluation
//            with its sigma components and the decision taken.
//
// Exit status: 0 = ok, 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "io/problem_format.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "sched/explain.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"

using namespace ftsched;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_tool <gantt | sim | profile | explain>\n"
      "                  <file | --example1 | --example2>\n"
      "                  [--base | --solution1 | --solution2] [-o FILE]\n"
      "       sim:     [--fail PROC@TIME]... [--dead PROC]...\n"
      "       profile: [--scenarios N] [--threads N] [--seed N]\n");
  return 2;
}

bool parse_number(const std::string& text, long& out) {
  char* end = nullptr;
  out = std::strtol(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0' && out >= 0;
}

bool emit(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << content;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode != "gantt" && mode != "sim" && mode != "profile" &&
      mode != "explain") {
    return usage();
  }

  std::string input;
  std::string out_file;
  bool example1 = false;
  bool example2 = false;
  HeuristicKind kind = HeuristicKind::kSolution1;
  std::vector<std::pair<std::string, Time>> crashes;  // --fail name@time
  std::vector<std::string> dead;                      // --dead name
  long scenarios = 2000;
  long threads = 0;
  long seed = 0;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    long number = 0;
    if (arg == "--example1") {
      example1 = true;
    } else if (arg == "--example2") {
      example2 = true;
    } else if (arg == "--base") {
      kind = HeuristicKind::kBase;
    } else if (arg == "--solution1") {
      kind = HeuristicKind::kSolution1;
    } else if (arg == "--solution2") {
      kind = HeuristicKind::kSolution2;
    } else if (arg == "-o" && i + 1 < argc) {
      out_file = argv[++i];
    } else if (arg == "--fail" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t at = spec.find('@');
      char* end = nullptr;
      const double time =
          at == std::string::npos
              ? 0.0
              : std::strtod(spec.c_str() + at + 1, &end);
      if (at == std::string::npos || end == spec.c_str() + at + 1 ||
          *end != '\0') {
        std::fprintf(stderr, "--fail wants PROC@TIME, got %s\n",
                     spec.c_str());
        return 2;
      }
      crashes.emplace_back(spec.substr(0, at), time);
    } else if (arg == "--dead" && i + 1 < argc) {
      dead.emplace_back(argv[++i]);
    } else if (arg == "--scenarios" && i + 1 < argc &&
               parse_number(argv[++i], number)) {
      scenarios = number;
    } else if (arg == "--threads" && i + 1 < argc &&
               parse_number(argv[++i], number)) {
      threads = number;
    } else if (arg == "--seed" && i + 1 < argc &&
               parse_number(argv[++i], number)) {
      seed = number;
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return usage();
    }
  }

  workload::OwnedProblem owned;
  if (example1) {
    owned = workload::paper_example1();
  } else if (example2) {
    owned = workload::paper_example2();
  } else if (!input.empty()) {
    std::ifstream file(input);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    Expected<workload::OwnedProblem> parsed = io::read_problem(buffer.str());
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(),
                   parsed.error().message.c_str());
      return 2;
    }
    owned = std::move(parsed).value();
  } else {
    return usage();
  }
  const ArchitectureGraph& arch = *owned.problem.architecture;

  SchedulerOptions sched_options;
  ExplainLog explain;
  if (mode == "explain") sched_options.explain = &explain;
  if (mode == "profile") {
    // Enable before scheduling so the sched.* spans (pressure evaluation,
    // candidate sort, commit) land in the profile alongside the campaign.
    static_cast<void>(obs::Profiler::global().drain());
    obs::Profiler::global().enable(true);
  }

  const Expected<Schedule> result =
      schedule(owned.problem, kind, sched_options);
  if (!result) {
    std::fprintf(stderr, "scheduling failed (%s): %s\n",
                 to_string(result.error().code).c_str(),
                 result.error().message.c_str());
    return 2;
  }
  const Schedule& sched = result.value();
  std::fprintf(stderr, "schedule: %s, K=%d, makespan %s\n",
               to_string(sched.kind()).c_str(), sched.failures_tolerated(),
               time_to_string(sched.makespan()).c_str());

  if (mode == "gantt") {
    return emit(out_file, obs::chrome_trace_from_schedule(sched)) ? 0 : 2;
  }

  if (mode == "explain") {
    return emit(out_file, explain.to_text(owned.problem)) ? 0 : 2;
  }

  if (mode == "sim") {
    FailureScenario scenario;
    for (const auto& [name, time] : crashes) {
      const ProcessorId proc = arch.find_processor(name);
      if (!proc.valid()) {
        std::fprintf(stderr, "unknown processor %s\n", name.c_str());
        return 2;
      }
      scenario.events.push_back(FailureEvent{proc, time});
    }
    for (const std::string& name : dead) {
      const ProcessorId proc = arch.find_processor(name);
      if (!proc.valid()) {
        std::fprintf(stderr, "unknown processor %s\n", name.c_str());
        return 2;
      }
      scenario.failed_at_start.push_back(proc);
    }
    const Simulator simulator(sched);
    const IterationResult iteration = simulator.run(scenario);
    std::fprintf(stderr,
                 "iteration: outputs %s, response %s, %zu timeouts, "
                 "%zu elections\n",
                 iteration.all_outputs_produced ? "produced" : "LOST",
                 time_to_string(iteration.response_time).c_str(),
                 iteration.trace.count(TraceEvent::Kind::kTimeout),
                 iteration.trace.count(TraceEvent::Kind::kElection));
    return emit(out_file,
                obs::chrome_trace_from_sim_trace(
                    iteration.trace, *owned.problem.algorithm, arch))
               ? 0
               : 2;
  }

  // profile: hammer the schedule with a campaign while recording spans.
  campaign::CampaignOptions options;
  options.scenarios = static_cast<std::size_t>(scenarios);
  options.threads = static_cast<unsigned>(threads);
  options.seed = static_cast<std::uint64_t>(seed);
  options.spec.max_iterations = 3;
  options.spec.over_budget_fraction = 0.15;
  options.spec.silence_probability = 0.10;
  options.spec.suspect_probability = 0.10;
  const campaign::CampaignReport report =
      campaign::run_campaign(sched, options);
  obs::Profiler::global().enable(false);
  std::fprintf(stderr, "campaign: %zu scenarios on %u threads, %.0f/s\n",
               report.scenarios_run, report.threads_used,
               report.scenarios_per_second());
  return emit(out_file,
              obs::chrome_trace_from_spans(obs::Profiler::global().drain()))
             ? 0
             : 2;
}
