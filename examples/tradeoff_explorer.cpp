// Trade-off explorer: a small CLI that generates a random problem from
// command-line parameters, runs all three heuristics, and fault-injects the
// results — the quickest way to explore the paper's design space (§5.6)
// on your own workload shapes.
//
//   tradeoff_explorer [ops] [procs] [K] [ccr] [arch: bus|p2p|ring|chain|star]
//                     [seed]
//
// Every argument is optional; defaults are 20 ops, 4 procs, K=1, ccr=0.5,
// bus, seed 1.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/text.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"
#include "workload/random_arch.hpp"

using namespace ftsched;

namespace {

workload::ArchKind parse_arch(const std::string& name) {
  if (name == "bus") return workload::ArchKind::kBus;
  if (name == "p2p") return workload::ArchKind::kFullyConnected;
  if (name == "ring") return workload::ArchKind::kRing;
  if (name == "chain") return workload::ArchKind::kChain;
  if (name == "star") return workload::ArchKind::kStar;
  std::fprintf(stderr, "unknown architecture '%s'\n", name.c_str());
  std::exit(2);
}

/// Masked fraction over all failure subsets of size <= K at mid-iteration.
std::string masking(const Schedule& schedule, int k) {
  if (k == 0) return "-";
  const Simulator simulator(schedule);
  int masked = 0;
  int total = 0;
  for (const auto& subset : failure_subsets(
           schedule.problem().architecture->processor_count(),
           static_cast<std::size_t>(k))) {
    FailureScenario scenario;
    for (ProcessorId proc : subset) {
      scenario.events.push_back(
          FailureEvent{proc, schedule.makespan() / 2});
    }
    ++total;
    masked += simulator.run(scenario).all_outputs_produced ? 1 : 0;
  }
  return std::to_string(masked) + "/" + std::to_string(total);
}

}  // namespace

int main(int argc, char** argv) {
  workload::RandomProblemParams params;
  params.dag.operations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  params.processors = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  params.failures_to_tolerate =
      argc > 3 ? static_cast<int>(std::strtol(argv[3], nullptr, 10)) : 1;
  params.ccr = argc > 4 ? std::strtod(argv[4], nullptr) : 0.5;
  params.arch_kind = argc > 5 ? parse_arch(argv[5]) : workload::ArchKind::kBus;
  params.seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1;
  params.dag.width = 4;
  params.restrict_probability = 0.1;

  const workload::OwnedProblem ex = workload::random_problem(params);
  std::printf("random problem: %zu operations, %zu processors, K=%d, "
              "ccr=%.2f, seed=%llu\n\n",
              ex.algorithm->operation_count(),
              ex.architecture->processor_count(),
              params.failures_to_tolerate, params.ccr,
              static_cast<unsigned long long>(params.seed));

  std::vector<std::vector<std::string>> table;
  table.push_back({"heuristic", "makespan", "comms", "passive", "proc util",
                   "masked<=K", "validator"});
  for (const HeuristicKind kind :
       {HeuristicKind::kBase, HeuristicKind::kSolution1,
        HeuristicKind::kSolution2}) {
    const auto result = schedule(ex.problem, kind);
    if (!result) {
      table.push_back({to_string(kind), "-", "-", "-", "-", "-",
                       result.error().message});
      continue;
    }
    const ScheduleMetrics m = compute_metrics(result.value());
    char util[32];
    std::snprintf(util, sizeof util, "%.0f%%",
                  100 * m.processor_utilisation);
    table.push_back(
        {to_string(kind), time_to_string(m.makespan),
         std::to_string(m.inter_processor_comms),
         std::to_string(m.passive_comms), util,
         kind == HeuristicKind::kBase
             ? "-"
             : masking(result.value(), params.failures_to_tolerate),
         validate(result.value()).empty() ? "clean" : "VIOLATIONS"});
  }
  std::fputs(render_table(table).c_str(), stdout);
  std::printf(
      "\nhint: raise ccr to see the bus punish solution 2's duplicated "
      "transfers; switch to p2p to see the ranking flip (§5.6 criterion "
      "4).\n");
  return 0;
}
